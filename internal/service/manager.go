// Package service is the resident anonymization subsystem behind the
// gloved daemon: a dataset registry fed by streaming CSV ingestion, a
// job manager that runs GLOVE k-anonymization asynchronously with
// per-job progress and cancellation, and a shard scheduler that
// partitions a dataset by subscriber and anonymizes the shards through
// a bounded worker pool before merging outputs and accounting.
package service

import (
	"bytes"
	"context"
	"fmt"
	"log/slog"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/analysis"
	"repro/internal/api"
	"repro/internal/cdr"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/obs"
)

// ErrQueueFull is returned by Submit when the job queue is at capacity;
// the condition is transient and the submission can be retried. The
// HTTP layer maps it to the queue_full envelope code.
var ErrQueueFull = fmt.Errorf("service: job queue is full")

// ManagerOptions tunes the job manager.
type ManagerOptions struct {
	// MaxConcurrentJobs is the number of jobs executed simultaneously
	// (each job additionally parallelizes internally); <= 0 means 1.
	MaxConcurrentJobs int
	// QueueLimit bounds the number of queued-but-not-started jobs;
	// <= 0 means 256. Submissions beyond the limit are rejected.
	QueueLimit int
	// Workers is the default per-job CPU parallelism when a spec leaves
	// it unset; <= 0 uses all CPUs.
	Workers int
	// AnalysisMaxFingerprints caps the input size for the quadratic
	// k-gap anonymizability analysis attached to finished jobs; inputs
	// above the cap skip the analysis. <= 0 means 2000.
	AnalysisMaxFingerprints int
	// ShardSeed drives the deterministic user-to-shard assignment.
	ShardSeed uint64

	// MaxFinishedJobs bounds how many terminal (done/failed/cancelled)
	// jobs the manager retains in memory, evicting the oldest-finished
	// first — a resident daemon must not grow without bound as results
	// accumulate. 0 means the default of 64; negative disables the
	// bound. Evicted jobs disappear from the API exactly as an explicit
	// DELETE ?purge=1 would.
	MaxFinishedJobs int
	// MaxFinishedAge additionally evicts terminal jobs older than this
	// (measured from their finish time); 0 disables age-based eviction.
	MaxFinishedAge time.Duration

	// DefaultStrategy / DefaultChunkSize / DefaultIndex fill the
	// corresponding JobSpec fields when a submission leaves them empty,
	// so operators can steer the planner daemon-wide (gloved -strategy,
	// -chunk-size and -index flags). Values are validated per job.
	DefaultStrategy  string
	DefaultChunkSize int
	DefaultIndex     string
	// DefaultWindowHours fills JobSpec.WindowHours when a submission
	// leaves it 0 (gloved -window-hours flag), turning every job into a
	// windowed continuous release by default.
	DefaultWindowHours float64
	// MaxFollowWindows caps how many windows a follow job may commit
	// before finishing, daemon-wide (gloved -follow-max-windows flag):
	// the effective bound is the smaller of this and the spec's
	// follow_windows when both are set. <= 0 leaves follow jobs
	// unbounded — they run until cancelled or their spec bound.
	MaxFollowWindows int

	// Telemetry receives the manager's metrics; nil creates a fresh one
	// (NewManager also attaches it to the registry), so callers of the
	// plain NewRegistry/NewManager/NewServer wiring get instrumentation
	// without threading anything.
	Telemetry *Telemetry
	// Log, when non-nil, receives structured job-lifecycle records
	// correlated by job_id.
	Log *slog.Logger
	// Journal, when non-nil, makes the job lifecycle durable: every
	// submission, event, committed release, and terminal status is
	// journaled, and Restore rebuilds jobs from a replay at boot. nil
	// runs the manager fully in memory (the non-durable default).
	Journal *Journal
}

func (o ManagerOptions) withDefaults() ManagerOptions {
	if o.MaxConcurrentJobs <= 0 {
		o.MaxConcurrentJobs = 1
	}
	if o.QueueLimit <= 0 {
		o.QueueLimit = 256
	}
	if o.AnalysisMaxFingerprints <= 0 {
		o.AnalysisMaxFingerprints = 2000
	}
	if o.MaxFinishedJobs == 0 {
		o.MaxFinishedJobs = 64
	}
	return o
}

// Manager owns the job lifecycle: submission, queueing, execution on a
// fixed pool of executor goroutines, cancellation, and result retention.
type Manager struct {
	reg  *Registry
	opt  ManagerOptions
	tel  *Telemetry
	log  *slog.Logger
	jrnl *Journal

	baseCtx    context.Context
	baseCancel context.CancelFunc
	queue      chan *Job
	wg         sync.WaitGroup

	// draining flips during a graceful drain: executors leave queued
	// jobs queued (requeued next boot) and jobs the drain deadline kills
	// suppress their journal cancellation so the journal keeps calling
	// them running. Atomic because runJob reads it while holding job.mu,
	// where taking m.mu would invert the eviction lock order.
	draining atomic.Bool

	mu     sync.Mutex
	seq    int
	jobs   map[string]*Job
	order  []string
	closed bool

	// agg holds the incremental lifetime aggregates behind the JSON
	// metrics report, updated at submission, window commit, and terminal
	// transition — never recomputed by walking retained jobs, so the
	// report stays O(retained) and the totals survive eviction.
	agg struct {
		sync.Mutex
		completedTotal int
		windowedJobs   int
		windowReleases int
		kernelCalls    int
		kernelPruned   int
		linkageSum     float64
		linkageJobs    int
	}
}

// NewManager starts a manager executing jobs against the registry.
// Close must be called to release its executor goroutines.
func NewManager(reg *Registry, opt ManagerOptions) *Manager {
	opt = opt.withDefaults()
	if opt.Telemetry == nil {
		opt.Telemetry = NewTelemetry()
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		reg:        reg,
		opt:        opt,
		tel:        opt.Telemetry,
		log:        opt.Log,
		jrnl:       opt.Journal,
		baseCtx:    ctx,
		baseCancel: cancel,
		queue:      make(chan *Job, opt.QueueLimit),
		jobs:       make(map[string]*Job),
	}
	m.tel.registerQueueDepth(func() float64 { return float64(len(m.queue)) })
	if reg != nil {
		reg.attachTelemetry(m.tel)
	}
	m.wg.Add(opt.MaxConcurrentJobs)
	for i := 0; i < opt.MaxConcurrentJobs; i++ {
		go m.executor()
	}
	return m
}

// Close stops accepting jobs, cancels any running ones, and waits for
// the executors to exit. Queued jobs that never started are moved to
// cancelled. Safe to call after Drain: it then only cancels whatever
// the drain deadline left behind.
func (m *Manager) Close() {
	m.mu.Lock()
	if !m.closed {
		m.closed = true
		close(m.queue)
	}
	m.mu.Unlock()

	m.baseCancel()
	m.wg.Wait()

	// Anything still sitting in the (now drained) queue map as queued
	// was never picked up: mark it cancelled so clients see a terminal
	// state.
	draining := m.draining.Load()
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, j := range m.jobs {
		j.mu.Lock()
		if j.state == JobQueued {
			if draining {
				// The checkpoint captured this job as still queued; the
				// in-memory cancellation is cosmetic and must not reach
				// the journal, or the next boot would not requeue it.
				j.suppressJournal = true
			}
			j.err = "service shut down before the job started"
			j.transition(JobCancelled)
			m.tel.jobNeverStarted()
		}
		j.mu.Unlock()
	}
}

// Drain is the graceful half of shutdown: stop admitting work, let
// running jobs finish for up to timeout, then cancel whatever remains.
// Queued jobs are deliberately left queued — the journal records them
// as submitted, so the next boot requeues them — and jobs the deadline
// kills suppress their journal cancellation for the same reason. Call
// Close afterwards to reap the executors, and Journal.Checkpoint
// between the two to write the clean-shutdown snapshot.
func (m *Manager) Drain(timeout time.Duration) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.draining.Store(true)
	close(m.queue)
	m.mu.Unlock()

	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case <-done:
	case <-t.C:
		if m.log != nil {
			m.log.Warn("drain deadline exceeded, cancelling running jobs", "timeout", timeout)
		}
		m.baseCancel()
		<-done
	}
}

// Submit validates the spec, registers a new job, and enqueues it.
// Spec fields left empty inherit the manager-wide defaults before
// validation, so a bad daemon default surfaces as a submission error
// rather than a failed job.
func (m *Manager) Submit(spec JobSpec) (JobStatus, error) {
	if spec.Strategy == "" {
		spec.Strategy = m.opt.DefaultStrategy
	}
	// The chunk-size default only applies where chunking can happen, so
	// an explicit single-strategy submission is not rejected over a
	// daemon-wide chunk default.
	if spec.ChunkSize == 0 && spec.Strategy != string(core.StrategySingle) {
		spec.ChunkSize = m.opt.DefaultChunkSize
	}
	if spec.Index == "" {
		spec.Index = m.opt.DefaultIndex
	}
	if spec.WindowHours == 0 {
		spec.WindowHours = m.opt.DefaultWindowHours
	}
	// A negative window_hours is the explicit "batch" spelling: 0 is
	// indistinguishable from unset, so without it no submission could
	// override a daemon-wide -window-hours default back to batch.
	if spec.WindowHours < 0 {
		spec.WindowHours = 0
	}
	if err := spec.Validate(); err != nil {
		return JobStatus{}, err
	}
	info, ok := m.reg.Get(spec.DatasetID)
	if !ok {
		return JobStatus{}, api.Errorf(api.CodeDatasetNotFound, "unknown dataset %q", spec.DatasetID).
			With("dataset_id", spec.DatasetID)
	}
	// A follow job's feed grows after submission, so its current user
	// count proves nothing; each window is checked against k when it
	// closes instead.
	if !spec.Follow && info.Users < spec.K {
		return JobStatus{}, api.Errorf(api.CodeInvalidSpec, "dataset %s hides %d users, cannot %d-anonymize",
			info.ID, info.Users, spec.K)
	}
	if spec.Workers <= 0 {
		spec.Workers = m.opt.Workers
	}

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return JobStatus{}, api.Errorf(api.CodeShuttingDown, "manager is shut down")
	}
	m.seq++
	job := newJob(fmt.Sprintf("job-%06d", m.seq), spec)
	// Journal the submission (and attach the event hook) BEFORE the
	// enqueue: an executor may pick the job up and start journaling its
	// events the moment it hits the channel, and those must replay after
	// the submission. Still under m.mu, so journal order matches ID
	// order.
	if err := m.jrnl.jobSubmitted(job.id, spec, job.created); err != nil {
		m.seq--
		m.mu.Unlock()
		return JobStatus{}, err
	}
	m.attachJobJournal(job)
	// The enqueue happens under m.mu so Close (which also takes m.mu)
	// cannot close the channel between the closed check and the send.
	// The send is non-blocking: a full queue rejects the submission.
	select {
	case m.queue <- job:
	default:
		// Cancel the already-journaled submission out of the log.
		m.jrnl.jobEvicted(job.id)
		m.mu.Unlock()
		return JobStatus{}, fmt.Errorf("%w (limit %d)", ErrQueueFull, m.opt.QueueLimit)
	}
	m.jobs[job.id] = job
	m.order = append(m.order, job.id)
	m.mu.Unlock()
	// Make the accepted submission durable before acknowledging it.
	if err := m.jrnl.commit(); err != nil {
		return JobStatus{}, err
	}

	m.tel.jobSubmitted()
	if spec.WindowHours > 0 {
		m.agg.Lock()
		m.agg.windowedJobs++
		m.agg.Unlock()
	}
	if m.log != nil {
		m.log.Info("job submitted", "job_id", job.id,
			"dataset_id", spec.DatasetID, "k", spec.K, "window_hours", spec.WindowHours)
	}
	return job.Status(), nil
}

// Get returns the status of a job.
func (m *Manager) Get(id string) (JobStatus, bool) {
	m.mu.Lock()
	job, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return JobStatus{}, false
	}
	return job.Status(), true
}

// List returns the status of every job in submission order. Age-based
// retention is enforced lazily here as well, so an idle daemon still
// sheds expired jobs when observed.
func (m *Manager) List() []JobStatus {
	m.mu.Lock()
	m.evictFinishedLocked()
	ids := append([]string(nil), m.order...)
	jobs := make([]*Job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, m.jobs[id])
	}
	m.mu.Unlock()
	out := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.Status())
	}
	return out
}

// ListPage returns up to limit job statuses after the given id (empty
// = from the start) in submission order, plus whether more remain —
// the cursor-pagination primitive, snapshotting only the requested
// page instead of every retained job. ok is false when after names no
// current job (a stale cursor, e.g. the job was evicted).
func (m *Manager) ListPage(after string, limit int) (page []JobStatus, more, ok bool) {
	m.mu.Lock()
	m.evictFinishedLocked()
	start := 0
	if after != "" {
		idx := -1
		for i, id := range m.order {
			if id == after {
				idx = i
				break
			}
		}
		if idx < 0 {
			m.mu.Unlock()
			return nil, false, false
		}
		start = idx + 1
	}
	end := start + limit
	if end > len(m.order) {
		end = len(m.order)
	}
	jobs := make([]*Job, 0, end-start)
	for _, id := range m.order[start:end] {
		jobs = append(jobs, m.jobs[id])
	}
	more = end < len(m.order)
	m.mu.Unlock()
	for _, j := range jobs {
		page = append(page, j.Status())
	}
	return page, more, true
}

// Cancel requests cancellation of a queued or running job. Queued jobs
// move to cancelled immediately; running jobs are interrupted via their
// context and reach the cancelled state when the run unwinds.
func (m *Manager) Cancel(id string) (JobStatus, error) {
	m.mu.Lock()
	job, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return JobStatus{}, api.Errorf(api.CodeJobNotFound, "unknown job %q", id).With("job_id", id)
	}
	job.mu.Lock()
	switch {
	case job.state == JobQueued:
		job.cancelRequested = true
		job.err = "cancelled before start"
		job.transition(JobCancelled)
		m.tel.jobNeverStarted()
		// Now terminal: subject to retention like any finished job.
		defer func() {
			m.mu.Lock()
			m.evictFinishedLocked()
			m.mu.Unlock()
		}()
	case job.state == JobRunning:
		job.cancelRequested = true
		if job.cancel != nil {
			job.cancel()
		}
	default: // terminal
		state := job.state
		job.mu.Unlock()
		return JobStatus{}, api.Errorf(api.CodeJobTerminal, "job %s already %s", id, state).
			With("state", string(state))
	}
	job.mu.Unlock()
	return job.Status(), nil
}

// Remove deletes a terminal job and its retained result from memory, so
// a long-running daemon does not accumulate finished jobs forever.
// Queued or running jobs must be cancelled first.
func (m *Manager) Remove(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	job, ok := m.jobs[id]
	if !ok {
		return api.Errorf(api.CodeJobNotFound, "unknown job %q", id).With("job_id", id)
	}
	job.mu.Lock()
	state := job.state
	job.mu.Unlock()
	if !state.Terminal() {
		return api.Errorf(api.CodeJobNotTerminal, "job %s is %s, cancel it before removing", id, state).
			With("state", string(state))
	}
	delete(m.jobs, id)
	for i, oid := range m.order {
		if oid == id {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
	return nil
}

// Result returns the anonymized dataset of a finished job. For a
// windowed job it is only served when the run produced exactly one
// release (then it is byte-identical to the batch result); multi-window
// jobs publish per-window releases via WindowResult instead.
func (m *Manager) Result(id string) (*core.Dataset, error) {
	m.mu.Lock()
	job, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return nil, api.Errorf(api.CodeJobNotFound, "unknown job %q", id).With("job_id", id)
	}
	job.mu.Lock()
	defer job.mu.Unlock()
	if job.state != JobDone {
		return nil, api.Errorf(api.CodeResultNotReady, "job %s is %s, no result", id, job.state).
			With("state", string(job.state))
	}
	if job.result == nil && len(job.windows) > 1 {
		return nil, api.Errorf(api.CodeResultWindowed,
			"job %s produced %d windowed releases, download them per window", id, len(job.windows)).
			With("windows", len(job.windows))
	}
	return job.result, nil
}

// WindowResult returns the release of one window of a windowed job.
// Completed windows are downloadable as soon as they finish — while the
// job is still running later windows, and even when the job was
// cancelled afterwards (a committed window is a complete, validated
// release; cancellation only prevents windows that never finished).
func (m *Manager) WindowResult(id string, w int) (*core.Dataset, error) {
	m.mu.Lock()
	job, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return nil, api.Errorf(api.CodeJobNotFound, "unknown job %q", id).With("job_id", id)
	}
	job.mu.Lock()
	defer job.mu.Unlock()
	if len(job.windows) == 0 {
		return nil, api.Errorf(api.CodeWindowNotFound, "job %s is not windowed", id)
	}
	// w is the absolute window index reported in WindowStatus.Index
	// (indices may jump over empty windows).
	for _, jw := range job.windows {
		if jw.index != w {
			continue
		}
		if jw.state != WindowDone {
			return nil, api.Errorf(api.CodeWindowNotReady, "job %s window %d is %s, no release", id, w, jw.state).
				With("window_state", string(jw.state))
		}
		return jw.result, nil
	}
	return nil, api.Errorf(api.CodeWindowNotFound, "job %s has no window %d", id, w).With("window", w)
}

// EventsSince exposes a job's event log to the SSE endpoint: the events
// after sequence number `after`, or (when the log has nothing newer) a
// channel closed on the next append. ok is false for unknown or evicted
// jobs, which ends the stream.
func (m *Manager) EventsSince(id string, after int) (evs []api.JobEvent, wake <-chan struct{}, ok bool) {
	m.mu.Lock()
	job, found := m.jobs[id]
	m.mu.Unlock()
	if !found {
		return nil, nil, false
	}
	evs, wake = job.eventsSince(after)
	return evs, wake, true
}

// attachJobJournal wires a job's event log into the journal; no-op on
// non-durable managers.
func (m *Manager) attachJobJournal(job *Job) {
	if m.jrnl == nil {
		return
	}
	jl := m.jrnl
	job.onEvent = func(e api.JobEvent) {
		jl.jobEvent(job.id, e)
	}
}

// executor pops jobs off the queue until the queue closes.
func (m *Manager) executor() {
	defer m.wg.Done()
	for job := range m.queue {
		m.runJob(job)
	}
}

// runJob drives one job from queued to a terminal state.
func (m *Manager) runJob(job *Job) {
	if m.draining.Load() {
		// Graceful drain: leave the job queued instead of starting (or
		// cancelling) it. The journal records only the submission, so the
		// next boot requeues it.
		return
	}
	ctx, cancel := context.WithCancel(m.baseCtx)
	defer cancel()

	job.mu.Lock()
	if job.state != JobQueued {
		// Cancelled while waiting in the queue.
		job.mu.Unlock()
		return
	}
	if m.baseCtx.Err() != nil {
		// Shutdown: skip the run entirely instead of starting a doomed
		// job that would burn planShards work before noticing.
		job.err = "service shut down before the job started"
		job.transition(JobCancelled)
		m.tel.jobNeverStarted()
		job.mu.Unlock()
		return
	}
	job.cancel = cancel
	job.trace = obs.NewTrace(obs.SpanJob, job.id)
	job.transition(JobRunning)
	spec := job.spec
	started := job.started
	job.mu.Unlock()

	m.tel.jobStarted()
	if m.log != nil {
		m.log.Info("job started", "job_id", job.id)
	}

	outcome, err := m.execute(ctx, job, spec)

	// The accuracy measurement walks every published sample; do it
	// before taking job.mu so status polling never blocks behind it.
	var accuracy *metrics.Summary
	if err == nil && outcome.measured != nil {
		if sum, serr := metrics.Measure(outcome.measured).Summarize(); serr == nil {
			accuracy = &sum
		}
	}

	job.mu.Lock()
	job.cancel = nil
	// A cancel acknowledged while the run was in a non-interruptible
	// tail (e.g. the capped analysis pass) must still win: never report
	// "done" for a job the client was told is being cancelled.
	// Window aborts are recorded (and their events emitted) before the
	// terminal transition, so an event stream always ends on the
	// terminal state event.
	switch {
	case job.cancelRequested || ctx.Err() != nil:
		if m.draining.Load() && !job.cancelRequested {
			// Killed by the drain deadline, not by the user: keep the
			// cancellation out of the journal so the job is requeued at
			// the next boot instead of restored as cancelled.
			job.suppressJournal = true
		}
		job.err = "cancelled"
		job.abortOpenWindowsLocked()
		job.transition(JobCancelled)
	case err != nil:
		job.err = err.Error()
		job.abortOpenWindowsLocked()
		job.transition(JobFailed)
	default:
		job.result = outcome.result
		job.stats = outcome.stats
		job.accuracy = accuracy
		job.anonymousFraction = outcome.anonFrac
		job.linkage = outcome.linkage
		job.transition(JobDone)
	}
	job.trace.Root().End()
	state := job.state
	stats := job.stats
	finished := job.finished
	job.mu.Unlock()

	m.journalTerminal(job)

	m.tel.jobFinished(state, finished.Sub(started), stats)
	m.agg.Lock()
	if state == JobDone {
		m.agg.completedTotal++
		if stats != nil {
			m.agg.kernelCalls += stats.EffortKernelCalls
			m.agg.kernelPruned += stats.EffortKernelPruned
		}
		if outcome.linkage != nil {
			m.agg.linkageSum += outcome.linkage.LinkedFraction
			m.agg.linkageJobs++
		}
	}
	m.agg.Unlock()
	if m.log != nil {
		attrs := []any{"job_id", job.id, "state", string(state),
			"duration", finished.Sub(started)}
		if err != nil {
			attrs = append(attrs, "error", err.Error())
		}
		m.log.Info("job finished", attrs...)
	}

	// The job just turned terminal: apply the retention policy so a
	// resident daemon sheds the oldest finished jobs and their results.
	m.mu.Lock()
	m.evictFinishedLocked()
	m.mu.Unlock()
}

// journalTerminal makes a job's terminal state durable: for non-follow
// jobs every committed release (follow jobs journaled theirs at each
// window commit), then the full terminal status — the record that turns
// a replayed job from "interrupted, requeue" into "finished, restore
// verbatim". Drain-cancelled jobs are skipped on purpose.
func (m *Manager) journalTerminal(job *Job) {
	if m.jrnl == nil {
		return
	}
	job.mu.Lock()
	if job.suppressJournal {
		job.mu.Unlock()
		return
	}
	st := job.statusLocked()
	type rel struct {
		w   journalWindow
		out *core.Dataset
	}
	var rels []rel
	if !job.spec.Follow {
		for _, w := range job.windows {
			if w.state != WindowDone {
				continue
			}
			rels = append(rels, rel{
				w: journalWindow{
					Index:       w.index,
					StartMinute: w.startMinute,
					EndMinute:   w.endMinute,
					Records:     w.records,
					Users:       w.users,
					Groups:      w.groups,
					Stats:       w.stats,
				},
				out: w.result,
			})
		}
		if job.result != nil {
			rels = append(rels, rel{w: journalWindow{Batch: true, Stats: job.stats}, out: job.result})
		}
	}
	job.mu.Unlock()

	for _, r := range rels {
		if err := m.jrnl.jobResult(job.id, r.w, r.out); err != nil {
			if m.log != nil {
				m.log.Error("journaling job result failed", "job_id", job.id, "error", err.Error())
			}
			return
		}
	}
	if err := m.jrnl.jobTerminalStatus(job.id, st); err != nil && m.log != nil {
		m.log.Error("journaling terminal status failed", "job_id", job.id, "error", err.Error())
	}
}

// evictFinishedLocked enforces the terminal-job retention policy,
// removing the oldest-finished jobs beyond MaxFinishedJobs and any
// terminal job older than MaxFinishedAge. Caller holds m.mu.
func (m *Manager) evictFinishedLocked() {
	type finished struct {
		id string
		at time.Time
	}
	var term []finished
	for _, id := range m.order {
		job := m.jobs[id]
		job.mu.Lock()
		if job.state.Terminal() {
			term = append(term, finished{id, job.finished})
		}
		job.mu.Unlock()
	}
	sort.Slice(term, func(i, j int) bool { return term[i].at.Before(term[j].at) })

	evict := make(map[string]bool)
	if m.opt.MaxFinishedAge > 0 {
		cutoff := time.Now().UTC().Add(-m.opt.MaxFinishedAge)
		for _, f := range term {
			if f.at.Before(cutoff) {
				evict[f.id] = true
			}
		}
	}
	if max := m.opt.MaxFinishedJobs; max >= 0 {
		excess := len(term) - len(evict) - max
		for _, f := range term {
			if excess <= 0 {
				break
			}
			if !evict[f.id] {
				evict[f.id] = true
				excess--
			}
		}
	}
	if len(evict) == 0 {
		return
	}
	for id := range evict {
		delete(m.jobs, id)
		// Journal the eviction (riding the next fsync) so a replay does
		// not resurrect jobs the retention policy already shed.
		m.jrnl.jobEvicted(id)
	}
	kept := m.order[:0]
	for _, id := range m.order {
		if !evict[id] {
			kept = append(kept, id)
		}
	}
	m.order = kept
}

// jobList snapshots the retained jobs in submission order for the
// journal checkpoint.
func (m *Manager) jobList() []*Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	jobs := make([]*Job, 0, len(m.order))
	for _, id := range m.order {
		jobs = append(jobs, m.jobs[id])
	}
	return jobs
}

// seqNum exposes the job ID counter for journal checkpoints, so a
// restore never reissues the ID of an evicted job.
func (m *Manager) seqNum() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.seq
}

// Restore rebuilds the manager's jobs from a journal replay. Terminal
// jobs come back verbatim — status, event log, downloadable releases.
// Interrupted jobs are re-enqueued: batch and windowed jobs restart
// from scratch (their runs are deterministic, so the rerun publishes
// the same bytes), and follow jobs resume at their last committed
// window, with every already-committed release immutable. Call before
// the daemon serves traffic; requeued jobs may start executing
// immediately.
func (m *Manager) Restore(st *RecoveredState) error {
	m.mu.Lock()
	if st.JobSeq > m.seq {
		m.seq = st.JobSeq
	}
	m.mu.Unlock()
	for _, rj := range st.Jobs {
		if rj.Status != nil {
			job, err := restoreTerminalJob(rj)
			if err != nil {
				return fmt.Errorf("service: restore job %s: %w", rj.ID, err)
			}
			m.adoptRestored(job)
			m.jrnl.jobRecovered("restored")
			continue
		}
		if err := m.requeueRecovered(rj); err != nil {
			return fmt.Errorf("service: requeue job %s: %w", rj.ID, err)
		}
	}
	return nil
}

// adoptRestored registers a rebuilt job without journaling anything —
// everything about it is already in the journal.
func (m *Manager) adoptRestored(job *Job) {
	m.mu.Lock()
	m.jobs[job.id] = job
	m.order = append(m.order, job.id)
	m.mu.Unlock()
}

// requeueRecovered re-enqueues an interrupted job under its original ID.
// The submission is already journaled, so nothing is re-journaled here;
// the event hook is re-attached so the new run's events land in the
// journal like any other.
func (m *Manager) requeueRecovered(rj *RecoveredJob) error {
	job := newJob(rj.ID, rj.Spec)
	job.created = rj.CreatedAt
	if len(rj.Events) > 0 {
		job.events = append([]api.JobEvent(nil), rj.Events...)
	}
	outcome := "requeued"
	if rj.Spec.Follow {
		resume, err := buildFollowResume(job, rj)
		if err != nil {
			return err
		}
		if resume != nil {
			job.resume = resume
			outcome = "resumed"
		}
	}
	m.attachJobJournal(job)

	m.mu.Lock()
	select {
	case m.queue <- job:
	default:
		// The recovered backlog exceeds the queue; surface the loss as a
		// cancellation instead of silently dropping the job.
		job.mu.Lock()
		job.err = "job queue full after recovery"
		job.transition(JobCancelled)
		job.mu.Unlock()
	}
	m.jobs[job.id] = job
	m.order = append(m.order, job.id)
	m.mu.Unlock()
	m.jrnl.jobRecovered(outcome)
	if m.log != nil {
		m.log.Info("job recovered", "job_id", job.id, "outcome", outcome)
	}
	return nil
}

// buildFollowResume reconstructs a follow job's committed prefix: the
// jobWindow entries (so recovered releases stay downloadable), and the
// resume state executeFollow seeds its loop with — floor, committed
// count, releases, aggregate stats — so the continuation is
// byte-identical to a run that never crashed. nil when nothing was
// committed (the job simply restarts).
func buildFollowResume(job *Job, rj *RecoveredJob) (*followResume, error) {
	if len(rj.Results) == 0 {
		return nil, nil
	}
	resume := &followResume{floor: -1, stats: &core.GloveStats{}}
	for _, r := range rj.Results {
		w := r.Window
		if w.Batch {
			continue
		}
		if w.Index > resume.floor {
			resume.floor = w.Index
		}
		jw := &jobWindow{
			index:       w.Index,
			startMinute: w.StartMinute,
			endMinute:   w.EndMinute,
			records:     w.Records,
			users:       w.Users,
			state:       WindowEmpty,
		}
		if !w.Empty {
			out, err := cdr.ReadAnonymizedCSV(bytes.NewReader(r.CSV))
			if err != nil {
				return nil, fmt.Errorf("window %d release: %w", w.Index, err)
			}
			jw.state = WindowDone
			jw.result = out
			jw.groups = w.Groups
			jw.stats = w.Stats
			resume.releases = append(resume.releases, out)
			resume.committed++
			resume.stats.Add(w.Stats)
		}
		job.windows = append(job.windows, jw)
	}
	if resume.floor < 0 {
		return nil, nil
	}
	return resume, nil
}

// restoreTerminalJob rebuilds a finished job verbatim from its journaled
// terminal status, event log, and releases.
func restoreTerminalJob(rj *RecoveredJob) (*Job, error) {
	st := rj.Status
	job := &Job{
		id:                rj.ID,
		spec:              st.Spec,
		state:             st.State,
		err:               st.Error,
		created:           st.CreatedAt,
		eventCh:           make(chan struct{}),
		plan:              st.Plan,
		datasetVersion:    st.DatasetVersion,
		stats:             st.Stats,
		accuracy:          st.Accuracy,
		anonymousFraction: st.AnonymousFraction,
		linkage:           st.Linkage,
	}
	if st.StartedAt != nil {
		job.started = *st.StartedAt
	}
	if st.FinishedAt != nil {
		job.finished = *st.FinishedAt
	}
	job.events = append([]api.JobEvent(nil), rj.Events...)
	// Shards and Progress have no per-shard breakdown in the status;
	// seeding every slot with the overall fraction preserves both
	// aggregates exactly (Status reports len() and the mean).
	if st.Shards > 0 {
		job.shardProgress = make([]float64, st.Shards)
		for i := range job.shardProgress {
			job.shardProgress[i] = st.Progress
		}
	}
	results := make(map[int]*core.Dataset, len(rj.Results))
	for _, r := range rj.Results {
		if r.Window.Batch {
			out, err := cdr.ReadAnonymizedCSV(bytes.NewReader(r.CSV))
			if err != nil {
				return nil, fmt.Errorf("batch release: %w", err)
			}
			job.result = out
			continue
		}
		if r.Window.Empty {
			continue
		}
		out, err := cdr.ReadAnonymizedCSV(bytes.NewReader(r.CSV))
		if err != nil {
			return nil, fmt.Errorf("window %d release: %w", r.Window.Index, err)
		}
		results[r.Window.Index] = out
	}
	for _, ws := range st.Windows {
		job.windows = append(job.windows, &jobWindow{
			index:       ws.Index,
			startMinute: ws.StartMinute,
			endMinute:   ws.EndMinute,
			records:     ws.Records,
			users:       ws.Users,
			state:       ws.State,
			groups:      ws.Groups,
			stats:       ws.Stats,
			result:      results[ws.Index],
		})
	}
	return job, nil
}

// runOutcome carries everything a finished run hands back to runJob.
type runOutcome struct {
	// result is the dataset served by /v1/jobs/{id}/result: the merged
	// batch output, or the single release of a one-window windowed run;
	// nil for multi-window runs (served per window instead).
	result *core.Dataset
	// measured is the dataset the accuracy summary walks — the batch
	// result, or the concatenation of all windowed releases.
	measured *core.Dataset
	stats    *core.GloveStats
	anonFrac *float64
	linkage  *analysis.LinkageResult
}

// execute performs the anonymization pipeline of one job against a
// frozen snapshot of the dataset: appends racing the run bump the
// registry version but never change what this job anonymizes.
func (m *Manager) execute(ctx context.Context, job *Job, spec JobSpec) (runOutcome, error) {
	if spec.Follow {
		// Follow jobs are not frozen at submission: the run re-snapshots
		// the feed on every append wake-up inside its own loop.
		return m.executeFollow(ctx, job, spec)
	}
	table, info, ok := m.reg.SnapshotSource(spec.DatasetID)
	if !ok {
		return runOutcome{}, fmt.Errorf("service: dataset %q disappeared", spec.DatasetID)
	}
	job.mu.Lock()
	job.datasetVersion = info.Version
	job.mu.Unlock()

	if spec.WindowHours > 0 {
		return m.executeWindowed(ctx, job, spec, table, info)
	}
	root := job.traceRoot()

	planSpan := root.Child(obs.SpanPlan, "")
	shards := planShards(table, info.Users, spec.K, spec.Shards, m.opt.ShardSeed)
	// Resolve and publish the execution plan for the largest shard (one
	// fingerprint per subscriber) so clients can see what the auto
	// rules picked before the run finishes.
	plan, err := core.PlanFor(maxShardUsers(shards), anonymizeOptions(spec, spec.Workers, nil))
	if err != nil {
		return runOutcome{}, err
	}
	planSpan.SetAttr("strategy", string(plan.Strategy))
	planSpan.SetAttr("index", string(plan.Index))
	planSpan.SetAttr("shards", len(shards))
	job.emitSpan(obs.SpanPlan, "", planSpan.End())
	m.tel.jobPlanned(&plan)
	job.mu.Lock()
	job.shardProgress = make([]float64, len(shards))
	job.plan = &plan
	job.mu.Unlock()

	result, stats, err := runShards(ctx, shards, spec, nil, m.tel, root, job.setShardProgress)
	if err != nil {
		return runOutcome{}, err
	}
	vspan := root.Child(obs.SpanValidate, "")
	verr := core.ValidateKAnonymity(result, spec.K)
	job.emitSpan(obs.SpanValidate, "", vspan.End())
	if verr != nil {
		return runOutcome{}, fmt.Errorf("service: published dataset failed validation: %w", verr)
	}

	anonFrac := m.anonymizability(ctx, table, spec)
	return runOutcome{result: result, measured: result, stats: stats, anonFrac: anonFrac}, nil
}

// executeWindowed drives the continuous-release pipeline: the snapshot
// is partitioned into time windows, each window runs the same sharded
// pipeline a batch job uses (so a one-window job is byte-identical to
// the batch run), and every completed window is committed — and
// downloadable — before the next one starts. A failure or cancellation
// mid-window never publishes that window.
func (m *Manager) executeWindowed(ctx context.Context, job *Job, spec JobSpec, table cdr.Source, info DatasetInfo) (runOutcome, error) {
	wins, err := table.WindowSplit(spec.WindowDuration())
	if err != nil {
		return runOutcome{}, err
	}
	job.initWindows(wins)
	root := job.traceRoot()
	planSpan := root.Child(obs.SpanPlan, "")

	// Dry-plan every window up front: publishes the plan of the largest
	// run before work starts and rejects a window too sparse to
	// k-anonymize before burning any quadratic time. sizeShards walks
	// only distinct-user counts — no window's records are cloned into
	// shard tables just to be measured and thrown away; each window
	// materializes its shards lazily when its turn comes. The sizing
	// replays planShards' clamp and back-off exactly, so the dry run and
	// the real run agree (TestSizeShardsMatchesPlanShards).
	userCounts := make([]int, len(wins))
	maxUsers := 0
	for wi, win := range wins {
		users := win.Source.NumUsers()
		if users < spec.K {
			return runOutcome{}, fmt.Errorf(
				"service: window %d (minutes [%g, %g)) hides %d users, cannot %d-anonymize; use a longer window",
				win.Index, win.StartMinute, win.EndMinute, users, spec.K)
		}
		userCounts[wi] = users
		if _, u := sizeShards(win.Source, users, spec.K, spec.Shards, m.opt.ShardSeed); u > maxUsers {
			maxUsers = u
		}
	}
	plan, err := core.PlanFor(maxUsers, anonymizeOptions(spec, spec.Workers, nil))
	if err != nil {
		return runOutcome{}, err
	}
	planSpan.SetAttr("strategy", string(plan.Strategy))
	planSpan.SetAttr("index", string(plan.Index))
	planSpan.SetAttr("windows", len(wins))
	job.emitSpan(obs.SpanPlan, "", planSpan.End())
	m.tel.jobPlanned(&plan)
	job.mu.Lock()
	job.plan = &plan
	job.mu.Unlock()

	total := &core.GloveStats{}
	releases := make([]*core.Dataset, 0, len(wins))
	// Consecutive windows reuse warm engine sessions: the pool recycles
	// each shard worker's index storage into the next window.
	pool := core.NewSessionPool()
	for wi, win := range wins {
		if err := ctx.Err(); err != nil {
			return runOutcome{}, err
		}
		wname := fmt.Sprintf("w%d", win.Index)
		wspan := root.Child(obs.SpanWindow, wname)
		wspan.SetAttr("records", win.Source.NumRecords())
		wspan.SetAttr("users", userCounts[wi])
		shards := planShards(win.Source, userCounts[wi], spec.K, spec.Shards, m.opt.ShardSeed)
		job.startWindow(wi, len(shards))
		out, stats, err := runShards(ctx, shards, spec, pool, m.tel, wspan, func(shard int, frac float64) {
			job.setWindowShardProgress(wi, shard, frac)
		})
		if err != nil {
			wspan.End()
			return runOutcome{}, fmt.Errorf("service: window %d: %w", wins[wi].Index, err)
		}
		vspan := wspan.Child(obs.SpanValidate, "")
		verr := core.ValidateKAnonymity(out, spec.K)
		vspan.End()
		if verr != nil {
			wspan.End()
			return runOutcome{}, fmt.Errorf("service: window %d failed validation: %w", wins[wi].Index, verr)
		}
		wspan.SetAttr("groups", out.Len())
		job.commitWindow(wi, out, stats)
		job.emitSpan(obs.SpanWindow, wname, wspan.End())
		m.tel.windowCommitted(wspan.End())
		m.agg.Lock()
		m.agg.windowReleases++
		m.agg.Unlock()
		total.Add(stats)
		releases = append(releases, out)
	}

	var fps []*core.Fingerprint
	for _, rel := range releases {
		fps = append(fps, rel.Fingerprints...)
	}
	measured := &core.Dataset{Fingerprints: fps}
	total.OutputFingerprints = measured.Len()
	total.OutputSamples = measured.TotalSamples()

	outcome := runOutcome{
		measured: measured,
		stats:    total,
		anonFrac: m.anonymizability(ctx, table, spec),
		linkage:  m.crossWindowLinkage(ctx, wins, releases, spec),
	}
	if len(releases) == 1 {
		outcome.result = releases[0]
	}
	return outcome, nil
}

// maxShardUsers returns the subscriber count of the largest shard.
func maxShardUsers(shards []cdr.Source) int {
	max := 0
	for _, s := range shards {
		if u := s.NumUsers(); u > max {
			max = u
		}
	}
	return max
}

// Cross-window linkage probe budget: h samples of adversary knowledge
// per window, and how many shared subscribers are attacked per
// consecutive release pair.
const (
	linkageKnownSamples = 4
	linkageProbes       = 200
)

// crossWindowLinkage measures residual cross-release linkability of a
// finished windowed run (nil for single-window runs, on cancellation,
// or for inputs above the analysis cap).
func (m *Manager) crossWindowLinkage(ctx context.Context, wins []cdr.SourceWindow, releases []*core.Dataset, spec JobSpec) *analysis.LinkageResult {
	if len(releases) < 2 || ctx.Err() != nil {
		return nil
	}
	originals := make([]*core.Dataset, len(wins))
	totalUsers := 0
	for i, win := range wins {
		ds, err := win.Source.BuildDataset()
		if err != nil {
			return nil
		}
		originals[i] = ds
		totalUsers += ds.Len()
	}
	if totalUsers > m.opt.AnalysisMaxFingerprints {
		return nil
	}
	// Seeded deterministically so repeated identical jobs report the
	// same measurement.
	rng := rand.New(rand.NewSource(int64(m.opt.ShardSeed) + 1))
	res, err := analysis.CrossWindowLinkage(originals, releases, linkageKnownSamples, linkageProbes, rng, spec.Workers)
	if err != nil {
		return nil
	}
	// Relabel pairs with the absolute window indices the rest of the
	// API uses (WindowStatus.Index, /windows/{w}/result); consecutive
	// releases may span a gap of empty windows, which the relabeled
	// indices make visible.
	for i := range res.Pairs {
		res.Pairs[i].Window = wins[i].Index
	}
	return &res
}

// completedDetailCap bounds the per-job detail list of the JSON metrics
// report: under job churn the report stays a few tens of kilobytes
// instead of growing with the retention window.
const completedDetailCap = 16

// Report assembles the JSON metrics report. Per-state/strategy/index
// counts walk the retained jobs (bounded by the retention policy);
// lifetime totals — window releases, kernel counters, completed count,
// linkage mean — come from the incremental aggregates, so they survive
// eviction. The Completed detail list is capped to the most recently
// finished jobs, newest first.
func (m *Manager) Report() MetricsReport {
	rep := MetricsReport{
		Datasets:       m.reg.Count(),
		JobsByState:    make(map[JobState]int),
		JobsByStrategy: make(map[core.Strategy]int),
		JobsByIndex:    make(map[core.IndexKind]int),
		Runtime:        m.tel.Runtime(),
		Colstore:       m.reg.ColstoreReport(),
		Durability:     m.jrnl.Report(),
	}
	var done []JobStatus
	for _, st := range m.List() {
		rep.Jobs++
		rep.JobsByState[st.State]++
		if st.Plan != nil {
			rep.JobsByStrategy[st.Plan.Strategy]++
			rep.JobsByIndex[st.Plan.Index]++
		}
		if st.State == JobDone {
			done = append(done, st)
		}
	}
	sort.Slice(done, func(i, j int) bool {
		return done[i].FinishedAt.After(*done[j].FinishedAt)
	})
	if len(done) > completedDetailCap {
		done = done[:completedDetailCap]
	}
	rep.Completed = done

	m.agg.Lock()
	rep.CompletedTotal = m.agg.completedTotal
	rep.WindowedJobs = m.agg.windowedJobs
	rep.WindowReleases = m.agg.windowReleases
	rep.EffortKernelCalls = m.agg.kernelCalls
	rep.EffortKernelPruned = m.agg.kernelPruned
	if m.agg.linkageJobs > 0 {
		mean := m.agg.linkageSum / float64(m.agg.linkageJobs)
		rep.MeanCrossWindowLinkage = &mean
	}
	m.agg.Unlock()
	return rep
}

// Trace returns the span tree a job's execution recorded. Jobs that
// never started (still queued, or cancelled before running) have no
// trace yet — the stable trace_not_found condition.
func (m *Manager) Trace(id string) (api.JobTrace, error) {
	m.mu.Lock()
	job, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return api.JobTrace{}, api.Errorf(api.CodeJobNotFound, "unknown job %q", id).With("job_id", id)
	}
	job.mu.Lock()
	tr := job.trace
	state := job.state
	job.mu.Unlock()
	if tr == nil {
		return api.JobTrace{}, api.Errorf(api.CodeTraceNotFound,
			"job %s has not recorded a trace (state %s)", id, state).
			With("job_id", id).With("state", string(state))
	}
	return api.JobTrace{JobID: id, State: state, Root: tr.Snapshot()}, nil
}

// anonymizability runs the k-gap analysis of Sec. 5 on the job's input,
// reporting the fraction of fingerprints that were k-anonymous before
// GLOVE ran. The pass is quadratic, so it is skipped (nil) for inputs
// above the configured cap or when the analysis fails.
func (m *Manager) anonymizability(ctx context.Context, table cdr.Source, spec JobSpec) *float64 {
	// table is nil when a recovered follow job finishes before taking a
	// fresh snapshot (its window budget was already met at restore).
	if table == nil || ctx.Err() != nil {
		return nil
	}
	ds, err := table.BuildDataset()
	if err != nil || ds.Len() < spec.K || ds.Len() > m.opt.AnalysisMaxFingerprints {
		return nil
	}
	_, kgaps, err := analysis.KGapCDF(core.DefaultParams(), ds, spec.K, spec.Workers)
	if err != nil {
		return nil
	}
	frac := analysis.AnonymousFraction(kgaps)
	return &frac
}
