package service

import (
	"bytes"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/cdr"
	"repro/internal/core"
	"repro/internal/geo"
)

// ingestSynth registers a synthetic dataset with the registry.
func ingestSynth(t *testing.T, reg *Registry, users, days int) DatasetInfo {
	t.Helper()
	table := synthTable(t, users, days)
	var buf bytes.Buffer
	if err := cdr.WriteCSV(&buf, table); err != nil {
		t.Fatal(err)
	}
	info, err := reg.Ingest(&buf, "synthetic", table.Center, table.SpanDays)
	if err != nil {
		t.Fatal(err)
	}
	return info
}

// waitForState polls until the job reaches a state for which ok returns
// true, failing the test on timeout.
func waitForState(t *testing.T, mgr *Manager, id string, ok func(JobStatus) bool) JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st, found := mgr.Get(id)
		if !found {
			t.Fatalf("job %s disappeared", id)
		}
		if ok(st) {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	st, _ := mgr.Get(id)
	t.Fatalf("timeout waiting for job %s, last state %s (progress %.2f)", id, st.State, st.Progress)
	return JobStatus{}
}

func TestManagerJobLifecycle(t *testing.T) {
	reg := NewRegistry()
	mgr := NewManager(reg, ManagerOptions{})
	defer mgr.Close()

	info := ingestSynth(t, reg, 40, 2)
	st, err := mgr.Submit(JobSpec{DatasetID: info.ID, K: 2, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if st.State != JobQueued {
		t.Errorf("fresh job state = %s", st.State)
	}

	final := waitForState(t, mgr, st.ID, func(s JobStatus) bool { return s.State.Terminal() })
	if final.State != JobDone {
		t.Fatalf("job finished %s: %s", final.State, final.Error)
	}
	if final.Progress != 1 {
		t.Errorf("done job progress = %g", final.Progress)
	}
	if final.Stats == nil || final.Stats.InputUsers != info.Users {
		t.Errorf("stats missing or wrong: %+v", final.Stats)
	}
	if final.Accuracy == nil || final.Accuracy.Samples == 0 {
		t.Errorf("accuracy summary missing: %+v", final.Accuracy)
	}
	if final.AnonymousFraction == nil {
		t.Error("anonymizability analysis skipped for a small dataset")
	}
	if final.Shards < 1 {
		t.Errorf("effective shards = %d", final.Shards)
	}

	result, err := mgr.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.ValidateKAnonymity(result, 2); err != nil {
		t.Errorf("result not 2-anonymous: %v", err)
	}
	if got := result.Users(); got != info.Users {
		t.Errorf("result hides %d users, want %d", got, info.Users)
	}
}

func TestManagerSubmitErrors(t *testing.T) {
	reg := NewRegistry()
	mgr := NewManager(reg, ManagerOptions{})
	defer mgr.Close()

	if _, err := mgr.Submit(JobSpec{DatasetID: "nope", K: 2}); err == nil {
		t.Error("unknown dataset accepted")
	}
	info := ingestSynth(t, reg, 10, 1)
	if _, err := mgr.Submit(JobSpec{DatasetID: info.ID, K: 1}); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := mgr.Submit(JobSpec{DatasetID: info.ID, K: info.Users + 1}); err == nil {
		t.Error("k > users accepted")
	}
	if _, err := mgr.Result("nope"); err == nil {
		t.Error("result of unknown job accepted")
	}
	if _, err := mgr.Cancel("nope"); err == nil {
		t.Error("cancel of unknown job accepted")
	}
}

func TestManagerCancelRunning(t *testing.T) {
	reg := NewRegistry()
	mgr := NewManager(reg, ManagerOptions{})
	defer mgr.Close()

	// Large enough that the run takes seconds: cancellation lands while
	// the job is mid-flight.
	info := ingestSynth(t, reg, 600, 2)
	st, err := mgr.Submit(JobSpec{DatasetID: info.ID, K: 2, Shards: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, mgr, st.ID, func(s JobStatus) bool { return s.State == JobRunning })

	before := runtime.NumGoroutine()
	if _, err := mgr.Cancel(st.ID); err != nil {
		t.Fatal(err)
	}
	final := waitForState(t, mgr, st.ID, func(s JobStatus) bool { return s.State.Terminal() })
	if final.State != JobCancelled {
		t.Fatalf("cancelled job finished %s", final.State)
	}
	if _, err := mgr.Result(st.ID); err == nil {
		t.Error("cancelled job served a result")
	}
	// Cancelling again is a conflict.
	if _, err := mgr.Cancel(st.ID); err == nil {
		t.Error("double cancel accepted")
	}
	// The worker pool goroutines must drain once the run unwinds.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before+2 {
		t.Errorf("goroutines leaked: %d before cancel, %d after", before, now)
	}
}

func TestManagerCancelQueued(t *testing.T) {
	reg := NewRegistry()
	// One executor: the second job waits in the queue behind the first.
	mgr := NewManager(reg, ManagerOptions{MaxConcurrentJobs: 1})
	defer mgr.Close()

	big := ingestSynth(t, reg, 400, 2)
	small := ingestSynth(t, reg, 20, 1)

	first, err := mgr.Submit(JobSpec{DatasetID: big.ID, K: 2, Shards: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	second, err := mgr.Submit(JobSpec{DatasetID: small.ID, K: 2})
	if err != nil {
		t.Fatal(err)
	}

	st, err := mgr.Cancel(second.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != JobCancelled {
		t.Fatalf("queued job state after cancel = %s", st.State)
	}
	// The executor must skip the cancelled job without reviving it.
	if _, err := mgr.Cancel(first.ID); err != nil {
		t.Fatal(err)
	}
	waitForState(t, mgr, first.ID, func(s JobStatus) bool { return s.State.Terminal() })
	if st, _ := mgr.Get(second.ID); st.State != JobCancelled {
		t.Errorf("queued-cancelled job became %s", st.State)
	}
}

func TestManagerClose(t *testing.T) {
	reg := NewRegistry()
	mgr := NewManager(reg, ManagerOptions{MaxConcurrentJobs: 2})
	info := ingestSynth(t, reg, 30, 1)
	st, err := mgr.Submit(JobSpec{DatasetID: info.ID, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	mgr.Close()
	// Close is idempotent and leaves every job terminal.
	mgr.Close()
	got, _ := mgr.Get(st.ID)
	if !got.State.Terminal() {
		t.Errorf("job %s not terminal after Close: %s", st.ID, got.State)
	}
	if _, err := mgr.Submit(JobSpec{DatasetID: info.ID, K: 2}); err == nil {
		t.Error("submit accepted after Close")
	}
}

func TestRegistryIngestErrors(t *testing.T) {
	reg := NewRegistry()
	if _, err := reg.Ingest(bytes.NewBufferString("user,lat,lon,minute\n"), "", geo.LatLon{Lat: 0, Lon: 0}, 1); err == nil {
		t.Error("empty dataset accepted")
	}
	if _, err := reg.Ingest(bytes.NewBufferString("garbage"), "", geo.LatLon{Lat: 0, Lon: 0}, 1); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := reg.Ingest(bytes.NewBufferString("user,lat,lon,minute\na,1,2,3\n"), "", geo.LatLon{Lat: 500, Lon: 0}, 1); err == nil {
		t.Error("invalid center accepted")
	}
	if _, err := reg.Ingest(bytes.NewBufferString("user,lat,lon,minute\na,1,2,3\n"), "", geo.LatLon{Lat: 0, Lon: 0}, 0); err == nil {
		t.Error("zero span accepted")
	}
	reg.MaxRecords = 1
	csv := "user,lat,lon,minute\na,1,2,3\nb,1,2,4\n"
	if _, err := reg.Ingest(bytes.NewBufferString(csv), "", geo.LatLon{Lat: 0, Lon: 0}, 1); err == nil {
		t.Error("oversized dataset accepted")
	}
}

func TestManagerQueueFull(t *testing.T) {
	reg := NewRegistry()
	mgr := NewManager(reg, ManagerOptions{MaxConcurrentJobs: 1, QueueLimit: 1})
	defer mgr.Close()

	big := ingestSynth(t, reg, 400, 2)
	// First job occupies the executor, second fills the queue, third is
	// rejected with the retryable sentinel.
	first, err := mgr.Submit(JobSpec{DatasetID: big.ID, K: 2, Shards: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the executor has dequeued the first job so the single
	// queue slot is free for the second.
	waitForState(t, mgr, first.ID, func(s JobStatus) bool { return s.State != JobQueued })
	if _, err := mgr.Submit(JobSpec{DatasetID: big.ID, K: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Submit(JobSpec{DatasetID: big.ID, K: 2}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
}

func TestManagerRemove(t *testing.T) {
	reg := NewRegistry()
	mgr := NewManager(reg, ManagerOptions{})
	defer mgr.Close()

	info := ingestSynth(t, reg, 30, 1)
	st, err := mgr.Submit(JobSpec{DatasetID: info.ID, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.Remove(st.ID); err == nil {
		t.Error("removed a non-terminal job")
	}
	waitForState(t, mgr, st.ID, func(s JobStatus) bool { return s.State.Terminal() })
	if err := mgr.Remove(st.ID); err != nil {
		t.Fatal(err)
	}
	if _, ok := mgr.Get(st.ID); ok {
		t.Error("removed job still listed")
	}
	if err := mgr.Remove(st.ID); err == nil {
		t.Error("double remove accepted")
	}
}

func TestRegistryDelete(t *testing.T) {
	reg := NewRegistry()
	info := ingestSynth(t, reg, 10, 1)
	if !reg.Delete(info.ID) {
		t.Fatal("delete failed")
	}
	if _, ok := reg.Get(info.ID); ok {
		t.Error("deleted dataset still listed")
	}
	if len(reg.List()) != 0 {
		t.Error("deleted dataset still in List")
	}
	if reg.Delete(info.ID) {
		t.Error("double delete succeeded")
	}
}
