package service

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/api"
	"repro/internal/obs"
)

// scrape fetches the Prometheus exposition and parses it through the
// strict exposition validator, so every scrape in this file doubles as
// a format check.
func scrape(t *testing.T, baseURL string) map[string]*obs.Family {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scrape status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("scrape content type %q", ct)
	}
	fams, err := obs.ParseText(resp.Body)
	if err != nil {
		t.Fatalf("exposition invalid: %v", err)
	}
	out := make(map[string]*obs.Family, len(fams))
	for _, f := range fams {
		out[f.Name] = f
	}
	return out
}

// value returns the single sample of a family matching the given
// name+label filter, failing when none matches.
func value(t *testing.T, fams map[string]*obs.Family, name string, labels map[string]string) float64 {
	t.Helper()
	f, ok := fams[name]
	if !ok {
		t.Fatalf("family %s missing from scrape", name)
	}
	for _, s := range f.Samples {
		if s.Name != name {
			continue
		}
		match := true
		for k, v := range labels {
			got := ""
			for _, l := range s.Labels {
				if l.Name == k {
					got = l.Value
				}
			}
			if got != v {
				match = false
				break
			}
		}
		if match {
			return s.Value
		}
	}
	t.Fatalf("no %s sample with labels %v", name, labels)
	return 0
}

// TestServerExpositionRoundTrip is the acceptance pin for GET /metrics:
// after real traffic (ingest, a sharded batch job, a windowed job, and
// an error response) every line of a live scrape must survive the
// strict exposition parser, and the core series must reflect the work
// that happened.
func TestServerExpositionRoundTrip(t *testing.T) {
	srv, _ := newTestServer(t)
	table := synthTable(t, 40, 2)
	ds := ingestTable(t, srv.URL, table, "exp")

	st := submitJob(t, srv.URL, JobSpec{DatasetID: ds.ID, K: 2, Shards: 2})
	waitJobDone(t, srv.URL, st.ID)
	wst := submitJob(t, srv.URL, JobSpec{DatasetID: ds.ID, K: 2, WindowHours: 24})
	waitJobDone(t, srv.URL, wst.ID)
	// One envelope error, so an error status lands in the HTTP series.
	if resp, err := http.Get(srv.URL + "/v1/jobs/job-999999"); err == nil {
		resp.Body.Close()
	}

	fams := scrape(t, srv.URL)

	if got := value(t, fams, "glove_datasets", nil); got != 1 {
		t.Errorf("glove_datasets = %g, want 1", got)
	}
	if got := value(t, fams, "glove_ingest_records_total", nil); got != float64(len(table.Records)) {
		t.Errorf("glove_ingest_records_total = %g, want %d", got, len(table.Records))
	}
	if got := value(t, fams, "glove_jobs_submitted_total", nil); got != 2 {
		t.Errorf("glove_jobs_submitted_total = %g, want 2", got)
	}
	if got := value(t, fams, "glove_jobs_finished_total", map[string]string{"state": "done"}); got != 2 {
		t.Errorf(`glove_jobs_finished_total{state="done"} = %g, want 2`, got)
	}
	if got := value(t, fams, "glove_jobs_running", nil); got != 0 {
		t.Errorf("glove_jobs_running = %g after all jobs done", got)
	}
	if got := value(t, fams, "glove_window_releases_total", nil); got < 1 {
		t.Errorf("glove_window_releases_total = %g, want >= 1", got)
	}
	if got := value(t, fams, "glove_shards_total", nil); got < 3 {
		t.Errorf("glove_shards_total = %g, want >= 3 (2 batch shards + windows)", got)
	}
	if got := value(t, fams, "glove_http_requests_total",
		map[string]string{"route": "/v1/jobs/{id}", "method": "GET", "status": "404"}); got < 1 {
		t.Errorf("404 request series = %g, want >= 1", got)
	}
	// The route label must be the bounded pattern, never a raw path.
	for _, s := range fams["glove_http_requests_total"].Samples {
		for _, l := range s.Labels {
			if l.Name == "route" && strings.Contains(l.Value, "job-") {
				t.Errorf("route label leaked a raw path: %q", l.Value)
			}
		}
	}
	// Runtime gauges from the satellite: process health + boot identity.
	if got := value(t, fams, "glove_process_goroutines", nil); got < 1 {
		t.Errorf("glove_process_goroutines = %g", got)
	}
	if _, ok := fams["glove_process_heap_inuse_bytes"]; !ok {
		t.Error("glove_process_heap_inuse_bytes missing")
	}
	if got := value(t, fams, "glove_boot_info", nil); got != 1 {
		t.Errorf("glove_boot_info = %g, want 1", got)
	}
	// Histograms rode through ParseText, which enforces cumulative
	// buckets ending at +Inf; pin that the job-duration histogram saw
	// both jobs.
	hist, ok := fams["glove_job_duration_seconds"]
	if !ok {
		t.Fatal("glove_job_duration_seconds missing from scrape")
	}
	count := -1.0
	for _, s := range hist.Samples {
		if s.Name == "glove_job_duration_seconds_count" {
			count = s.Value
		}
	}
	if count != 2 {
		t.Errorf("glove_job_duration_seconds_count = %g, want 2", count)
	}
}

// TestJobTraceEndpoint pins the trace acceptance criterion: a windowed
// job's span tree covers plan, every window, per-window shards, and the
// engine's index-build/merge phases grafted under each shard.
func TestJobTraceEndpoint(t *testing.T) {
	srv, _ := newTestServer(t)
	table := synthTable(t, 40, 2)
	ds := ingestTable(t, srv.URL, table, "trace")
	st := submitJob(t, srv.URL, JobSpec{DatasetID: ds.ID, K: 2, WindowHours: 24})
	waitJobDone(t, srv.URL, st.ID)

	var tr api.JobTrace
	resp := getJSON(t, srv.URL+"/v1/jobs/"+st.ID+"/trace", &tr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace status %d", resp.StatusCode)
	}
	if tr.JobID != st.ID || tr.State != JobDone {
		t.Fatalf("trace header = %s/%s", tr.JobID, tr.State)
	}
	root := tr.Root
	if root == nil || root.Kind != obs.SpanJob {
		t.Fatalf("root span = %+v", root)
	}
	if root.Unfinished {
		t.Error("terminal job has an unfinished root span")
	}

	kinds := make(map[obs.SpanKind]int)
	var walk func(s *api.TraceSpan)
	var shardWithPhases bool
	walk = func(s *api.TraceSpan) {
		kinds[s.Kind]++
		if s.Kind == obs.SpanShard {
			var build, merge bool
			for _, c := range s.Children {
				build = build || c.Kind == obs.SpanIndexBuild
				merge = merge || c.Kind == obs.SpanMerge
			}
			if build && merge {
				shardWithPhases = true
			}
			if _, ok := s.Attrs["fingerprints"]; !ok {
				t.Errorf("shard span %q has no fingerprints attr", s.Name)
			}
		}
		for _, c := range s.Children {
			walk(c)
		}
	}
	walk(root)

	if kinds[obs.SpanPlan] != 1 {
		t.Errorf("plan spans = %d, want 1", kinds[obs.SpanPlan])
	}
	if want := len(waitJobDone(t, srv.URL, st.ID).Windows); kinds[obs.SpanWindow] != want {
		t.Errorf("window spans = %d, want %d", kinds[obs.SpanWindow], want)
	}
	if kinds[obs.SpanShard] < 1 {
		t.Errorf("shard spans = %d, want >= 1", kinds[obs.SpanShard])
	}
	if !shardWithPhases {
		t.Error("no shard span carries index_build + merge children")
	}
	if kinds[obs.SpanValidate] < 1 {
		t.Errorf("validate spans = %d, want >= 1", kinds[obs.SpanValidate])
	}
}

// TestJobTraceNotFound pins the stable error code for a job that never
// ran: registered in the code table, 404 on the wire.
func TestJobTraceNotFound(t *testing.T) {
	srv, mgr := newTestServer(t)
	// A queued job that never started has no trace; inject one directly
	// so the condition is deterministic rather than a scheduling race.
	mgr.mu.Lock()
	mgr.jobs["job-queued"] = newJob("job-queued", JobSpec{})
	mgr.order = append(mgr.order, "job-queued")
	mgr.mu.Unlock()

	resp, err := http.Get(srv.URL + "/v1/jobs/job-queued/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("trace status %d, want 404", resp.StatusCode)
	}
	var envelope api.Error
	if err := decodeBody(resp, &envelope); err != nil {
		t.Fatal(err)
	}
	if envelope.Code != api.CodeTraceNotFound {
		t.Fatalf("code = %q, want %q", envelope.Code, api.CodeTraceNotFound)
	}
	found := false
	for _, c := range api.Codes() {
		found = found || c == api.CodeTraceNotFound
	}
	if !found {
		t.Error("trace_not_found is not in the registered code table")
	}
}

// TestSpanEventsInStream verifies the SSE stream summarizes the coarse
// trace phases as span events: plan and every window.
func TestSpanEventsInStream(t *testing.T) {
	srv, _ := newTestServer(t)
	table := synthTable(t, 40, 2)
	ds := ingestTable(t, srv.URL, table, "sse")
	st := submitJob(t, srv.URL, JobSpec{DatasetID: ds.ID, K: 2, WindowHours: 24})
	final := waitJobDone(t, srv.URL, st.ID)

	resp, err := http.Get(srv.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	spanFrames := 0
	planSeen := false
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "event: span" {
			spanFrames++
		}
		if strings.HasPrefix(line, "data: ") && strings.Contains(line, `"kind":"plan"`) {
			planSeen = true
		}
	}
	if !planSeen {
		t.Error("no plan span event in the stream")
	}
	if want := 1 + len(final.Windows); spanFrames != want {
		t.Errorf("span events = %d, want %d (plan + one per window)", spanFrames, want)
	}
}

// TestMetricsReportCappedAndIncremental pins the satellite fix to the
// JSON report: the completed-job detail list is bounded by retention
// and the cap, while the lifetime totals keep counting across eviction.
func TestMetricsReportCappedAndIncremental(t *testing.T) {
	reg := NewRegistry()
	mgr := NewManager(reg, ManagerOptions{MaxConcurrentJobs: 2, MaxFinishedJobs: 3})
	t.Cleanup(mgr.Close)
	srvh := NewServer(reg, mgr)
	srv := newLocalServer(t, srvh)

	table := synthTable(t, 20, 2)
	ds := ingestTable(t, srv, table, "cap")
	const jobs = 5
	for i := 0; i < jobs; i++ {
		st := submitJob(t, srv, JobSpec{DatasetID: ds.ID, K: 2})
		waitJobDone(t, srv, st.ID)
	}

	var rep MetricsReport
	getJSON(t, srv+"/v1/metrics", &rep)
	if rep.CompletedTotal != jobs {
		t.Errorf("CompletedTotal = %d, want %d (must survive eviction)", rep.CompletedTotal, jobs)
	}
	if len(rep.Completed) > 3 {
		t.Errorf("Completed detail = %d entries, want <= 3 after eviction", len(rep.Completed))
	}
	for i := 1; i < len(rep.Completed); i++ {
		if rep.Completed[i].FinishedAt.After(*rep.Completed[i-1].FinishedAt) {
			t.Error("Completed detail not newest-first")
		}
	}
	if rep.Runtime.Goroutines < 1 || rep.Runtime.BootID == "" {
		t.Errorf("runtime block incomplete: %+v", rep.Runtime)
	}
}

// TestExpositionMonotonicUnderJobChurn scrapes concurrently with job
// churn (run under -race in CI): every scrape must parse, and the
// submitted-jobs counter must never move backwards between scrapes.
func TestExpositionMonotonicUnderJobChurn(t *testing.T) {
	srv, _ := newTestServer(t)
	table := synthTable(t, 20, 2)
	ds := ingestTable(t, srv.URL, table, "churn")

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 4; i++ {
			st := submitJob(t, srv.URL, JobSpec{DatasetID: ds.ID, K: 2})
			waitJobDone(t, srv.URL, st.ID)
		}
		close(done)
	}()

	last := -1.0
	for {
		select {
		case <-done:
			wg.Wait()
			if got := value(t, scrape(t, srv.URL), "glove_jobs_submitted_total", nil); got != 4 {
				t.Errorf("final glove_jobs_submitted_total = %g, want 4", got)
			}
			return
		default:
		}
		fams := scrape(t, srv.URL)
		got := value(t, fams, "glove_jobs_submitted_total", nil)
		if got < last {
			t.Fatalf("glove_jobs_submitted_total went backwards: %g after %g", got, last)
		}
		last = got
	}
}

// decodeBody decodes a JSON response body already held open.
func decodeBody(resp *http.Response, out any) error {
	return json.NewDecoder(resp.Body).Decode(out)
}

// newLocalServer spins an httptest server around a handler with
// cleanup, returning its base URL.
func newLocalServer(t *testing.T, h http.Handler) string {
	t.Helper()
	s := httptest.NewServer(h)
	t.Cleanup(s.Close)
	return s.URL
}
