package service

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/cdr"
	"repro/internal/geo"
)

// DatasetInfo is the public metadata of a registered dataset.
type DatasetInfo struct {
	ID        string     `json:"id"`
	Name      string     `json:"name"`
	Records   int        `json:"records"`
	Users     int        `json:"users"`
	SpanDays  int        `json:"span_days"`
	Center    geo.LatLon `json:"center"`
	CreatedAt time.Time  `json:"created_at"`
}

// Registry holds the datasets the service can anonymize. Ingestion is
// streaming: records are decoded and validated one at a time off the
// wire, so a multi-gigabyte operator feed never forces a second
// in-memory copy of the raw body.
type Registry struct {
	// MaxRecords bounds a single ingestion (0 = unlimited). The bound is
	// enforced during streaming, so an oversized upload fails early
	// instead of exhausting memory first.
	MaxRecords int

	mu    sync.Mutex
	seq   int
	infos map[string]DatasetInfo
	data  map[string]*cdr.Table
	order []string
}

// NewRegistry returns an empty dataset registry.
func NewRegistry() *Registry {
	return &Registry{
		infos: make(map[string]DatasetInfo),
		data:  make(map[string]*cdr.Table),
	}
}

// Ingest streams a raw record CSV into a new registered dataset. center
// and spanDays are the table metadata the CSV format does not carry.
func (g *Registry) Ingest(r io.Reader, name string, center geo.LatLon, spanDays int) (DatasetInfo, error) {
	if !center.Valid() {
		return DatasetInfo{}, fmt.Errorf("service: invalid dataset center %v", center)
	}
	if spanDays <= 0 {
		return DatasetInfo{}, fmt.Errorf("service: span_days = %d, need > 0", spanDays)
	}
	table := &cdr.Table{Center: center, SpanDays: spanDays}
	users := make(map[string]struct{})
	rr := cdr.NewRecordReader(r)
	for {
		rec, err := rr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return DatasetInfo{}, err
		}
		table.Records = append(table.Records, rec)
		users[rec.User] = struct{}{}
		if g.MaxRecords > 0 && len(table.Records) > g.MaxRecords {
			return DatasetInfo{}, fmt.Errorf("service: dataset exceeds %d records", g.MaxRecords)
		}
	}
	if len(table.Records) == 0 {
		return DatasetInfo{}, fmt.Errorf("service: dataset is empty")
	}

	g.mu.Lock()
	defer g.mu.Unlock()
	g.seq++
	info := DatasetInfo{
		ID:        fmt.Sprintf("ds-%06d", g.seq),
		Name:      name,
		Records:   len(table.Records),
		Users:     len(users),
		SpanDays:  spanDays,
		Center:    center,
		CreatedAt: time.Now().UTC(),
	}
	g.infos[info.ID] = info
	g.data[info.ID] = table
	g.order = append(g.order, info.ID)
	return info, nil
}

// Get returns the metadata of a registered dataset.
func (g *Registry) Get(id string) (DatasetInfo, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	info, ok := g.infos[id]
	return info, ok
}

// Table returns the raw record table of a registered dataset. The table
// is shared, not copied; callers must not mutate it (job execution only
// reads it — sharding and subsetting clone records).
func (g *Registry) Table(id string) (*cdr.Table, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	t, ok := g.data[id]
	return t, ok
}

// Delete removes a dataset, releasing its record table. Jobs already
// holding the table keep running; queued jobs referencing the ID fail
// when they start.
func (g *Registry) Delete(id string) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.infos[id]; !ok {
		return false
	}
	delete(g.infos, id)
	delete(g.data, id)
	for i, oid := range g.order {
		if oid == id {
			g.order = append(g.order[:i], g.order[i+1:]...)
			break
		}
	}
	return true
}

// List returns all registered datasets in ingestion order.
func (g *Registry) List() []DatasetInfo {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]DatasetInfo, 0, len(g.order))
	for _, id := range g.order {
		out = append(out, g.infos[id])
	}
	return out
}
