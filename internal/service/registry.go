package service

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/cdr"
	"repro/internal/colstore"
	"repro/internal/faultinject"
	"repro/internal/geo"
)

// Registry holds the datasets the service can anonymize. Ingestion is
// streaming: records are decoded and validated one at a time off the
// wire, so a multi-gigabyte operator feed never forces a second
// in-memory copy of the raw body. Datasets are append-only after
// creation (POST /v1/datasets/{id}/records), modeling a continuous
// operator feed; running jobs read copy-on-write snapshots and are
// never affected by appends.
type Registry struct {
	// MaxRecords bounds a dataset's total record count (0 = unlimited).
	// The bound is enforced during streaming and before any record is
	// committed, so an oversized upload fails early and never buffers
	// past the cap. For columnar datasets it is additionally enforced
	// against the store's own committed count inside its append critical
	// section, so concurrent appends cannot double-admit.
	MaxRecords int

	// Columnar switches new datasets to the memory-bounded columnar
	// backend (internal/colstore): records stream directly into column
	// chunks, never materializing a []Record, and jobs read the store
	// through cdr.Source views. Existing table-backed datasets are
	// unaffected; the two backends produce bit-identical pipelines.
	Columnar bool
	// ColumnarByteBudget caps the resident column bytes of each columnar
	// dataset; chunks beyond the budget spill to disk (0 = everything
	// stays resident).
	ColumnarByteBudget int64
	// ColumnarSpillDir holds the columnar spill files ("" = system temp
	// directory).
	ColumnarSpillDir string

	mu     sync.Mutex
	seq    int
	infos  map[string]DatasetInfo
	data   map[string]*cdr.Table
	stores map[string]*colstore.Store
	users  map[string]map[string]struct{}
	order  []string
	tel    *Telemetry
	jrnl   *Journal

	// watch holds one broadcast channel per dataset with subscribers,
	// closed and replaced on every append (and on delete) — the wake
	// primitive behind follow jobs. Lazily created by Watch.
	watch map[string]chan struct{}

	// colCounters accumulates spill-path activity across every columnar
	// store ever owned by this registry; shared so the exported fault and
	// spill counters stay monotone as datasets come and go.
	colCounters colstore.Counters
}

// attachTelemetry wires the registry's dataset gauges; NewManager calls
// it so the plain NewRegistry/NewManager wiring is instrumented without
// signature changes. The first telemetry wins; the current totals are
// pushed immediately so gauges are correct even when datasets were
// ingested before the manager existed.
func (g *Registry) attachTelemetry(tel *Telemetry) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.tel != nil || tel == nil {
		return
	}
	g.tel = tel
	tel.registerColstore(
		func() float64 { return float64(g.colstoreStats().ResidentBytes) },
		func() float64 { return float64(g.colstoreStats().SpilledChunks) },
		func() float64 { return float64(g.colCounters.Faults.Load()) },
		func() float64 { return float64(g.colCounters.Spills.Load()) },
	)
	g.publishTotalsLocked()
}

// AttachJournal starts journaling every registry mutation. Call it
// AFTER Restore: the restore replays journaled CSV through the normal
// ingest paths, and those must not re-journal what they are replaying.
func (g *Registry) AttachJournal(jl *Journal) {
	g.mu.Lock()
	g.jrnl = jl
	g.mu.Unlock()
}

// seqNum exposes the dataset ID counter for journal checkpoints, so a
// restore never reissues the ID of a deleted dataset.
func (g *Registry) seqNum() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.seq
}

// Restore rebuilds the registry from a journal replay by streaming each
// recovered dataset's CSV ops through the normal ingest and append
// paths (so columnar/table dispatch, span extension, and validation all
// behave exactly as they did when the bytes first arrived). Must run
// before AttachJournal and before the daemon serves traffic.
func (g *Registry) Restore(st *RecoveredState) error {
	for _, d := range st.Datasets {
		if err := g.restoreDataset(d); err != nil {
			return fmt.Errorf("service: restore dataset %s: %w", d.ID, err)
		}
	}
	g.mu.Lock()
	if st.DatasetSeq > g.seq {
		g.seq = st.DatasetSeq
	}
	g.publishTotalsLocked()
	g.mu.Unlock()
	return nil
}

func (g *Registry) restoreDataset(d *RecoveredDataset) error {
	if len(d.Ops) == 0 {
		return fmt.Errorf("journal entry without record CSV")
	}
	if _, err := g.ingest(bytes.NewReader(d.Ops[0]), d.Name, d.Center, d.SpanDays, d.ID); err != nil {
		return err
	}
	for _, op := range d.Ops[1:] {
		if _, err := g.Append(d.ID, bytes.NewReader(op)); err != nil {
			return err
		}
	}
	g.mu.Lock()
	if info, ok := g.infos[d.ID]; ok {
		info.CreatedAt = d.CreatedAt
		info.UpdatedAt = d.UpdatedAt
		g.infos[d.ID] = info
	}
	g.mu.Unlock()
	return nil
}

// colstoreStats sums the live columnar stores' footprints for the
// exported gauges.
func (g *Registry) colstoreStats() colstore.Stats {
	g.mu.Lock()
	defer g.mu.Unlock()
	var sum colstore.Stats
	for _, st := range g.stores {
		s := st.Stats()
		sum.Records += s.Records
		sum.Chunks += s.Chunks
		sum.ResidentChunks += s.ResidentChunks
		sum.SpilledChunks += s.SpilledChunks
		sum.ResidentBytes += s.ResidentBytes
	}
	return sum
}

// ColstoreReport summarizes the columnar storage tier for the JSON
// metrics report; nil when the registry is not running columnar and has
// no columnar dataset, so table-only daemons omit the block entirely.
func (g *Registry) ColstoreReport() *api.ColstoreInfo {
	g.mu.Lock()
	columnar := g.Columnar || len(g.stores) > 0
	datasets := len(g.stores)
	g.mu.Unlock()
	if !columnar {
		return nil
	}
	st := g.colstoreStats()
	return &api.ColstoreInfo{
		Datasets:       datasets,
		ResidentBytes:  st.ResidentBytes,
		ResidentChunks: st.ResidentChunks,
		SpilledChunks:  st.SpilledChunks,
		ChunkFaults:    g.colCounters.Faults.Load(),
		ChunkSpills:    g.colCounters.Spills.Load(),
	}
}

// publishTotalsLocked pushes the dataset count and record total to the
// gauges. Caller holds g.mu.
func (g *Registry) publishTotalsLocked() {
	records := 0
	for _, id := range g.order {
		records += g.infos[id].Records
	}
	g.tel.datasetTotals(len(g.order), records)
}

// Count returns the number of registered datasets without copying their
// metadata (the metrics report calls this per scrape).
func (g *Registry) Count() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.order)
}

// countingReader counts bytes consumed from an ingestion body so the
// ingest-bytes counter reflects actual wire volume.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// NewRegistry returns an empty dataset registry.
func NewRegistry() *Registry {
	return &Registry{
		infos:  make(map[string]DatasetInfo),
		data:   make(map[string]*cdr.Table),
		stores: make(map[string]*colstore.Store),
		users:  make(map[string]map[string]struct{}),
		watch:  make(map[string]chan struct{}),
	}
}

// Watch returns a channel closed the next time the dataset changes (an
// append lands or the dataset is deleted), plus whether the dataset
// exists. Follow jobs take the channel BEFORE snapshotting: any append
// racing the snapshot closes this channel, so the subscriber can sleep
// on it without ever missing records. Each wake consumes the channel —
// call Watch again for the next cycle.
func (g *Registry) Watch(id string) (<-chan struct{}, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.infos[id]; !ok {
		return nil, false
	}
	ch, ok := g.watch[id]
	if !ok {
		ch = make(chan struct{})
		g.watch[id] = ch
	}
	return ch, true
}

// wakeLocked broadcasts a dataset change to its watchers (close and
// replace on the next Watch). Caller holds g.mu.
func (g *Registry) wakeLocked(id string) {
	if ch, ok := g.watch[id]; ok {
		close(ch)
		delete(g.watch, id)
	}
}

// Close releases every columnar store's spill file; called at daemon
// shutdown after the manager has stopped all jobs.
func (g *Registry) Close() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	var first error
	for _, st := range g.stores {
		if err := st.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// readRecords streams a record CSV, enforcing the record cap before
// each append: the reader errors out as soon as the stream would exceed
// `room` records, without buffering the offending record.
func (g *Registry) readRecords(r io.Reader, room int) ([]cdr.Record, map[string]struct{}, error) {
	var recs []cdr.Record
	users := make(map[string]struct{})
	rr := cdr.NewRecordReader(r)
	for {
		rec, err := rr.Next()
		if err == io.EOF {
			return recs, users, nil
		}
		if err != nil {
			return nil, nil, err
		}
		if g.MaxRecords > 0 && len(recs) >= room {
			return nil, nil, fmt.Errorf("service: dataset exceeds %d records", g.MaxRecords)
		}
		recs = append(recs, rec)
		users[rec.User] = struct{}{}
	}
}

// Ingest streams a raw record CSV into a new registered dataset. center
// and spanDays are the table metadata the CSV format does not carry.
func (g *Registry) Ingest(r io.Reader, name string, center geo.LatLon, spanDays int) (DatasetInfo, error) {
	return g.ingest(r, name, center, spanDays, "")
}

// journalTee wraps an ingestion body so the raw CSV is retained for the
// journal; when no journal is attached the body streams through
// untouched and nothing is buffered.
func (g *Registry) journalTee(r io.Reader) (io.Reader, *bytes.Buffer) {
	g.mu.Lock()
	jl := g.jrnl
	g.mu.Unlock()
	if jl == nil {
		return r, nil
	}
	var raw bytes.Buffer
	return io.TeeReader(r, &raw), &raw
}

// ingest is Ingest plus an optional forced ID, used by Restore to
// reissue the exact IDs the journal recorded.
func (g *Registry) ingest(r io.Reader, name string, center geo.LatLon, spanDays int, forcedID string) (DatasetInfo, error) {
	if !center.Valid() {
		return DatasetInfo{}, fmt.Errorf("service: invalid dataset center %v", center)
	}
	if spanDays <= 0 {
		return DatasetInfo{}, fmt.Errorf("service: span_days = %d, need > 0", spanDays)
	}
	if g.Columnar {
		return g.ingestColumnar(r, name, center, spanDays, forcedID)
	}
	r, raw := g.journalTee(r)
	cr := &countingReader{r: r}
	recs, users, err := g.readRecords(cr, g.MaxRecords)
	if err != nil {
		return DatasetInfo{}, err
	}
	if len(recs) == 0 {
		return DatasetInfo{}, fmt.Errorf("service: dataset is empty")
	}
	table := &cdr.Table{Records: recs, Center: center, SpanDays: spanDays}

	g.mu.Lock()
	now := time.Now().UTC()
	info := DatasetInfo{
		ID:        g.nextIDLocked(forcedID),
		Name:      name,
		Records:   len(table.Records),
		Users:     len(users),
		SpanDays:  spanDays,
		Version:   1,
		Center:    center,
		CreatedAt: now,
		UpdatedAt: now,
	}
	g.infos[info.ID] = info
	g.data[info.ID] = table
	g.users[info.ID] = users
	g.order = append(g.order, info.ID)
	if err := g.journalCreateLocked(info, raw); err != nil {
		delete(g.infos, info.ID)
		delete(g.data, info.ID)
		delete(g.users, info.ID)
		g.order = g.order[:len(g.order)-1]
		g.mu.Unlock()
		return DatasetInfo{}, err
	}
	g.tel.ingested(len(recs), cr.n)
	g.publishTotalsLocked()
	jl := g.jrnl
	g.mu.Unlock()
	if err := jl.commit(); err != nil {
		return DatasetInfo{}, err
	}
	return info, nil
}

// nextIDLocked issues the next dataset ID, or adopts a forced one
// (journal restore) while keeping the counter ahead of it.
func (g *Registry) nextIDLocked(forced string) string {
	if forced == "" {
		g.seq++
		return fmt.Sprintf("ds-%06d", g.seq)
	}
	if n := idNum("ds-%06d", forced); n > g.seq {
		g.seq = n
	}
	return forced
}

// journalCreateLocked journals a dataset creation inside the registry
// critical section, so journal order always matches ID issue order even
// under concurrent ingests. Caller holds g.mu and fsyncs after release.
func (g *Registry) journalCreateLocked(info DatasetInfo, raw *bytes.Buffer) error {
	if g.jrnl == nil || raw == nil {
		return nil
	}
	return g.jrnl.datasetCreated(info, raw.Bytes())
}

// colstoreOptions assembles the per-store options of a new columnar
// dataset.
func (g *Registry) colstoreOptions() colstore.Options {
	return colstore.Options{
		ByteBudget: g.ColumnarByteBudget,
		SpillDir:   g.ColumnarSpillDir,
		Counters:   &g.colCounters,
	}
}

// capErr translates the columnar store's cap violation into the same
// error the table path's streaming reader reports.
func (g *Registry) capErr(err error) error {
	if errors.Is(err, colstore.ErrTooManyRecords) {
		return fmt.Errorf("service: dataset exceeds %d records", g.MaxRecords)
	}
	return err
}

// ingestColumnar streams a record CSV straight into a fresh columnar
// store: no []Record is ever materialized, so ingestion memory is the
// store's resident budget plus one CSV row. The store enforces the
// record cap against its own committed count and rolls back on any
// decode error.
func (g *Registry) ingestColumnar(r io.Reader, name string, center geo.LatLon, spanDays int, forcedID string) (DatasetInfo, error) {
	r, raw := g.journalTee(r)
	cr := &countingReader{r: r}
	rr := cdr.NewRecordReader(cr)
	store := colstore.New(cdr.Meta{Center: center, SpanDays: spanDays}, g.colstoreOptions())
	max := -1
	if g.MaxRecords > 0 {
		max = g.MaxRecords
	}
	added, err := store.AppendStreamMax(rr.Next, max)
	if err != nil {
		return DatasetInfo{}, g.capErr(err)
	}
	if added == 0 {
		return DatasetInfo{}, fmt.Errorf("service: dataset is empty")
	}

	g.mu.Lock()
	now := time.Now().UTC()
	info := DatasetInfo{
		ID:        g.nextIDLocked(forcedID),
		Name:      name,
		Records:   store.Len(),
		Users:     store.Users(),
		SpanDays:  spanDays,
		Version:   1,
		Center:    center,
		CreatedAt: now,
		UpdatedAt: now,
	}
	g.infos[info.ID] = info
	g.stores[info.ID] = store
	g.order = append(g.order, info.ID)
	if err := g.journalCreateLocked(info, raw); err != nil {
		delete(g.infos, info.ID)
		delete(g.stores, info.ID)
		g.order = g.order[:len(g.order)-1]
		g.mu.Unlock()
		return DatasetInfo{}, err
	}
	g.tel.ingested(added, cr.n)
	g.publishTotalsLocked()
	jl := g.jrnl
	g.mu.Unlock()
	if err := jl.commit(); err != nil {
		return DatasetInfo{}, err
	}
	return info, nil
}

// appendColumnar streams additional records into a columnar dataset's
// store. Atomicity and the record cap live inside the store's append
// critical section; the registry only refreshes the metadata afterwards
// from the store's authoritative counts.
func (g *Registry) appendColumnar(id string, store *colstore.Store, r io.Reader) (DatasetInfo, error) {
	r, raw := g.journalTee(r)
	cr := &countingReader{r: r}
	rr := cdr.NewRecordReader(cr)
	maxMinute := 0.0
	next := func() (cdr.Record, error) {
		rec, err := rr.Next()
		if err == nil && rec.Minute > maxMinute {
			maxMinute = rec.Minute
		}
		return rec, err
	}
	max := -1
	if g.MaxRecords > 0 {
		max = g.MaxRecords
	}
	added, err := store.AppendStreamMax(next, max)
	if err != nil {
		return DatasetInfo{}, g.capErr(err)
	}
	if added == 0 {
		return DatasetInfo{}, fmt.Errorf("service: append without records")
	}

	g.mu.Lock()
	defer g.mu.Unlock()
	info, ok := g.infos[id]
	if !ok {
		// Deleted while the stream was in flight; the store the caller
		// resolved keeps the records, but it is no longer registered.
		return DatasetInfo{}, fmt.Errorf("service: unknown dataset %q", id)
	}
	// Records may extend the recording period; keep the nominal span
	// covering the feed (it feeds rate-based screening downstream).
	if days := int(maxMinute/cdr.MinutesPerDay) + 1; days > info.SpanDays {
		info.SpanDays = days
		store.SetSpanDays(days)
	}
	info.Records = store.Len()
	info.Users = store.Users()
	info.Version++
	info.UpdatedAt = time.Now().UTC()
	g.infos[id] = info
	if err := g.journalAppendLocked(id, raw, info.UpdatedAt); err != nil {
		return DatasetInfo{}, err
	}
	g.tel.ingested(added, cr.n)
	g.publishTotalsLocked()
	g.wakeLocked(id)
	jl := g.jrnl
	g.mu.Unlock()
	err = g.commitAppend(jl)
	g.mu.Lock() // re-acquire for the deferred unlock
	if err != nil {
		return DatasetInfo{}, err
	}
	return info, nil
}

// journalAppendLocked journals an append inside the registry critical
// section so journal order matches the dataset's version order. Caller
// holds g.mu.
func (g *Registry) journalAppendLocked(id string, raw *bytes.Buffer, at time.Time) error {
	if g.jrnl == nil || raw == nil {
		return nil
	}
	return g.jrnl.datasetAppended(id, raw.Bytes(), at)
}

// commitAppend fsyncs a journaled append before it is acknowledged. The
// registry.append.committed crash point fires after the fsync: the
// mutation is durable but the client never saw the 200 — re-sending it
// after recovery would double-apply, which is exactly what the crash
// e2e matrix pins down.
func (g *Registry) commitAppend(jl *Journal) error {
	if err := jl.commit(); err != nil {
		return err
	}
	if jl != nil {
		faultinject.Crash("registry.append.committed")
	}
	return nil
}

// Append streams additional records onto a registered dataset and bumps
// its version. The append is atomic: a decode error or a record-cap
// violation leaves the dataset untouched. Snapshots taken by running
// jobs never observe the new records.
func (g *Registry) Append(id string, r io.Reader) (DatasetInfo, error) {
	// Pre-check outside the lock with whatever room the cap allows at
	// most, so a grossly oversized body fails while streaming; the exact
	// bound against the current size is re-checked under the lock.
	g.mu.Lock()
	info, ok := g.infos[id]
	store := g.stores[id]
	g.mu.Unlock()
	if !ok {
		return DatasetInfo{}, fmt.Errorf("service: unknown dataset %q", id)
	}
	if store != nil {
		return g.appendColumnar(id, store, r)
	}
	room := g.MaxRecords - info.Records
	if room < 0 {
		room = 0
	}
	r, raw := g.journalTee(r)
	cr := &countingReader{r: r}
	recs, newUsers, err := g.readRecords(cr, room)
	if err != nil {
		return DatasetInfo{}, err
	}
	if len(recs) == 0 {
		return DatasetInfo{}, fmt.Errorf("service: append without records")
	}

	g.mu.Lock()
	defer g.mu.Unlock()
	info, ok = g.infos[id]
	if !ok {
		return DatasetInfo{}, fmt.Errorf("service: unknown dataset %q", id)
	}
	table := g.data[id]
	if g.MaxRecords > 0 && len(table.Records)+len(recs) > g.MaxRecords {
		return DatasetInfo{}, fmt.Errorf("service: dataset exceeds %d records", g.MaxRecords)
	}
	// Direct append, not cdr.Table.Append: the streaming reader already
	// validated every record, and an O(n) re-validation would stall all
	// registry operations (including job Snapshots) behind g.mu.
	table.Records = append(table.Records, recs...)
	users := g.users[id]
	for u := range newUsers {
		users[u] = struct{}{}
	}
	// Records may extend the recording period; keep the nominal span
	// covering the feed (it feeds rate-based screening downstream).
	maxMinute := 0.0
	for _, r := range recs {
		if r.Minute > maxMinute {
			maxMinute = r.Minute
		}
	}
	if days := int(maxMinute/cdr.MinutesPerDay) + 1; days > info.SpanDays {
		info.SpanDays = days
		table.SpanDays = days
	}
	info.Records = len(table.Records)
	info.Users = len(users)
	info.Version++
	info.UpdatedAt = time.Now().UTC()
	g.infos[id] = info
	if err := g.journalAppendLocked(id, raw, info.UpdatedAt); err != nil {
		return DatasetInfo{}, err
	}
	g.tel.ingested(len(recs), cr.n)
	g.publishTotalsLocked()
	g.wakeLocked(id)
	jl := g.jrnl
	g.mu.Unlock()
	err = g.commitAppend(jl)
	g.mu.Lock() // re-acquire for the deferred unlock
	if err != nil {
		return DatasetInfo{}, err
	}
	return info, nil
}

// Get returns the metadata of a registered dataset.
func (g *Registry) Get(id string) (DatasetInfo, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	info, ok := g.infos[id]
	return info, ok
}

// SnapshotSource returns a frozen read view of the dataset's records
// together with the metadata of that version. Later appends never
// mutate records the snapshot can see, so jobs anonymize exactly the
// version they started from. Table-backed datasets return a
// copy-on-write table clone; columnar datasets return an O(1) view
// bounded to the rows committed so far.
func (g *Registry) SnapshotSource(id string) (cdr.Source, DatasetInfo, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if st, ok := g.stores[id]; ok {
		return st.Snapshot(), g.infos[id], true
	}
	t, ok := g.data[id]
	if !ok {
		return nil, DatasetInfo{}, false
	}
	return t.Snapshot(), g.infos[id], true
}

// Delete removes a dataset, releasing its record table. Jobs already
// holding a snapshot keep running; queued jobs referencing the ID fail
// when they start. A columnar store is unregistered but not closed —
// running jobs may still fault its spilled chunks; the unlinked spill
// file is reclaimed once the last view is garbage collected.
func (g *Registry) Delete(id string) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.infos[id]; !ok {
		return false
	}
	delete(g.infos, id)
	delete(g.data, id)
	delete(g.stores, id)
	delete(g.users, id)
	for i, oid := range g.order {
		if oid == id {
			g.order = append(g.order[:i], g.order[i+1:]...)
			break
		}
	}
	g.publishTotalsLocked()
	// Wake watchers so follow jobs notice the deletion instead of
	// sleeping forever on a dataset that no longer exists.
	g.wakeLocked(id)
	g.jrnl.datasetDeleted(id)
	jl := g.jrnl
	g.mu.Unlock()
	jl.commit()
	g.mu.Lock() // re-acquire for the deferred unlock
	return true
}

// List returns all registered datasets in ingestion order.
func (g *Registry) List() []DatasetInfo {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]DatasetInfo, 0, len(g.order))
	for _, id := range g.order {
		out = append(out, g.infos[id])
	}
	return out
}

// ListPage returns up to limit datasets after the given id (empty =
// from the start) in ingestion order, plus whether more remain — the
// cursor-pagination primitive, copying only the requested page. ok is
// false when after names no current dataset (a stale cursor).
func (g *Registry) ListPage(after string, limit int) (page []DatasetInfo, more, ok bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	start := 0
	if after != "" {
		idx := -1
		for i, id := range g.order {
			if id == after {
				idx = i
				break
			}
		}
		if idx < 0 {
			return nil, false, false
		}
		start = idx + 1
	}
	end := start + limit
	if end > len(g.order) {
		end = len(g.order)
	}
	for _, id := range g.order[start:end] {
		page = append(page, g.infos[id])
	}
	return page, end < len(g.order), true
}
