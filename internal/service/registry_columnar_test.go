package service

import (
	"bytes"
	"fmt"
	"io"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"repro/internal/api"
	"repro/internal/cdr"
	"repro/internal/colstore"
	"repro/internal/geo"
)

// columnarRegistry returns a registry running the columnar backend with
// a small chunk budget so spilling is exercised even by test-sized
// datasets.
func columnarRegistry(t *testing.T) *Registry {
	t.Helper()
	reg := NewRegistry()
	reg.Columnar = true
	reg.ColumnarByteBudget = 4 * colstore.DefaultChunkRecords * 28
	reg.ColumnarSpillDir = t.TempDir()
	t.Cleanup(func() { reg.Close() })
	return reg
}

// capCSV builds a record CSV with n rows, one subscriber per 5 rows.
func capCSV(n int) string {
	var b strings.Builder
	b.WriteString("user,lat,lon,minute\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "u%04d,7.5%d,-5.5%d,%d\n", i/5, i%10, i%7, i*3)
	}
	return b.String()
}

// TestColumnarRecordCapBoundary pins the record-cap accounting of the
// columnar path: the cap is enforced against the store's own committed
// count, exactly at the boundary, and violations roll back atomically.
func TestColumnarRecordCapBoundary(t *testing.T) {
	center := geo.LatLon{Lat: 7.54, Lon: -5.55}

	// Ingesting exactly MaxRecords succeeds; one more record fails and
	// registers nothing.
	reg := columnarRegistry(t)
	reg.MaxRecords = 50
	if _, err := reg.Ingest(strings.NewReader(capCSV(51)), "over", center, 1); err == nil {
		t.Fatal("ingest above the cap accepted")
	}
	if got := reg.Count(); got != 0 {
		t.Fatalf("failed ingest left %d datasets registered", got)
	}
	info, err := reg.Ingest(strings.NewReader(capCSV(40)), "at", center, 1)
	if err != nil {
		t.Fatal(err)
	}

	// Appending up to exactly the cap succeeds.
	info2, err := reg.Append(info.ID, strings.NewReader(capCSV(10)))
	if err != nil {
		t.Fatalf("append to exactly the cap: %v", err)
	}
	if info2.Records != 50 {
		t.Fatalf("records at cap = %d, want 50", info2.Records)
	}

	// One more record over the cap fails atomically: count, users and
	// version are untouched.
	if _, err := reg.Append(info.ID, strings.NewReader(capCSV(1))); err == nil {
		t.Fatal("append beyond the cap accepted")
	}
	got, ok := reg.Get(info.ID)
	if !ok {
		t.Fatal("dataset disappeared")
	}
	if got.Records != 50 || got.Version != info2.Version || got.Users != info2.Users {
		t.Fatalf("failed append mutated the dataset: %+v vs %+v", got, info2)
	}

	// The snapshot agrees with the authoritative count.
	src, _, ok := reg.SnapshotSource(info.ID)
	if !ok {
		t.Fatal("snapshot failed")
	}
	if src.NumRecords() != 50 {
		t.Fatalf("snapshot holds %d records, want 50", src.NumRecords())
	}
}

// TestColumnarRegistryEquivalence runs the same feed and the same job
// through a table-backed and a columnar registry and requires identical
// results end to end: dataset metadata, streamed CSV bytes, and the
// anonymized output of a sharded windowed job.
func TestColumnarRegistryEquivalence(t *testing.T) {
	table := synthTable(t, 40, 2)
	var raw bytes.Buffer
	if err := cdr.WriteCSV(&raw, table); err != nil {
		t.Fatal(err)
	}

	plain := NewRegistry()
	col := columnarRegistry(t)
	infoP, err := plain.Ingest(bytes.NewReader(raw.Bytes()), "d", table.Center, table.SpanDays)
	if err != nil {
		t.Fatal(err)
	}
	infoC, err := col.Ingest(bytes.NewReader(raw.Bytes()), "d", table.Center, table.SpanDays)
	if err != nil {
		t.Fatal(err)
	}
	if infoP.Records != infoC.Records || infoP.Users != infoC.Users {
		t.Fatalf("metadata diverges: table %+v, columnar %+v", infoP, infoC)
	}

	srcP, _, _ := plain.SnapshotSource(infoP.ID)
	srcC, _, _ := col.SnapshotSource(infoC.ID)
	var csvP, csvC bytes.Buffer
	if err := cdr.WriteSourceCSV(&csvP, srcP); err != nil {
		t.Fatal(err)
	}
	if err := cdr.WriteSourceCSV(&csvC, srcC); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(csvP.Bytes(), csvC.Bytes()) {
		t.Fatal("columnar snapshot CSV differs from the table snapshot")
	}

	spec := JobSpec{K: 2, Shards: 2, WindowHours: 24}
	run := func(reg *Registry, id string) *JobStatus {
		mgr := NewManager(reg, ManagerOptions{})
		defer mgr.Close()
		s := spec
		s.DatasetID = id
		st, err := mgr.Submit(s)
		if err != nil {
			t.Fatal(err)
		}
		final := waitForState(t, mgr, st.ID, func(s JobStatus) bool { return s.State.Terminal() })
		if final.State != JobDone {
			t.Fatalf("job finished %s: %s", final.State, final.Error)
		}
		return &final
	}
	finalP := run(plain, infoP.ID)
	finalC := run(col, infoC.ID)

	if len(finalP.Windows) != len(finalC.Windows) {
		t.Fatalf("window counts diverge: %d vs %d", len(finalP.Windows), len(finalC.Windows))
	}
	for i := range finalP.Windows {
		wp, wc := finalP.Windows[i], finalC.Windows[i]
		if wp.Records != wc.Records || wp.Users != wc.Users || wp.Groups != wc.Groups {
			t.Errorf("window %d diverges: table %+v, columnar %+v", i, wp, wc)
		}
	}
	// The engine-level accounting (merges, kernel calls are
	// nondeterministic across workers — compare the deterministic parts).
	if finalP.Stats.Merges != finalC.Stats.Merges ||
		finalP.Stats.OutputFingerprints != finalC.Stats.OutputFingerprints ||
		finalP.Stats.SuppressedSamples != finalC.Stats.SuppressedSamples {
		t.Errorf("stats diverge: table %+v, columnar %+v", finalP.Stats, finalC.Stats)
	}
	if !reflect.DeepEqual(finalP.Accuracy, finalC.Accuracy) {
		t.Errorf("accuracy diverges: %+v vs %+v", finalP.Accuracy, finalC.Accuracy)
	}

	// The columnar tier reports its footprint in the metrics block.
	rep := col.ColstoreReport()
	if rep == nil || rep.Datasets != 1 {
		t.Fatalf("colstore report missing or wrong: %+v", rep)
	}
	if plain.ColstoreReport() != nil {
		t.Error("table-backed registry reports a colstore block")
	}
}

// TestColstoreMetricsExposition pins the colstore instruments on a live
// scrape: a budget of one byte forces every sealed chunk to spill, and
// streaming the snapshot back faults them in, so all four series must
// show real traffic on /metrics and in the /v1/metrics colstore block.
func TestColstoreMetricsExposition(t *testing.T) {
	reg := NewRegistry()
	reg.Columnar = true
	reg.ColumnarByteBudget = 1
	reg.ColumnarSpillDir = t.TempDir()
	t.Cleanup(func() { reg.Close() })
	mgr := NewManager(reg, ManagerOptions{})
	t.Cleanup(mgr.Close)
	srv := httptest.NewServer(NewServer(reg, mgr))
	t.Cleanup(srv.Close)

	// One sealed chunk (DefaultChunkRecords) plus a tail.
	center := geo.LatLon{Lat: 7.54, Lon: -5.55}
	info, err := reg.Ingest(strings.NewReader(capCSV(colstore.DefaultChunkRecords+100)), "m", center, 1)
	if err != nil {
		t.Fatal(err)
	}
	// After ingest the sealed chunk is spilled, not resident.
	fams := scrape(t, srv.URL)
	if got := value(t, fams, "colstore_resident_bytes", nil); got <= 0 {
		t.Errorf("colstore_resident_bytes = %g, want > 0", got)
	}
	if got := value(t, fams, "colstore_spilled_chunks", nil); got < 1 {
		t.Errorf("colstore_spilled_chunks = %g, want >= 1", got)
	}
	if got := value(t, fams, "colstore_chunk_spills_total", nil); got < 1 {
		t.Errorf("colstore_chunk_spills_total = %g, want >= 1", got)
	}

	// Streaming the snapshot back faults the spilled chunk in.
	src, _, ok := reg.SnapshotSource(info.ID)
	if !ok {
		t.Fatal("snapshot failed")
	}
	if err := cdr.WriteSourceCSV(io.Discard, src); err != nil {
		t.Fatal(err)
	}
	fams = scrape(t, srv.URL)
	if got := value(t, fams, "colstore_chunk_faults_total", nil); got < 1 {
		t.Errorf("colstore_chunk_faults_total = %g, want >= 1", got)
	}

	var rep api.MetricsReport
	getJSON(t, srv.URL+"/v1/metrics", &rep)
	if rep.Colstore == nil {
		t.Fatal("colstore block missing from /v1/metrics")
	}
	if rep.Colstore.Datasets != 1 || rep.Colstore.ChunkSpills < 1 || rep.Colstore.ChunkFaults < 1 {
		t.Errorf("colstore block does not reflect traffic: %+v", rep.Colstore)
	}
}
