package service

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/cdr"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/parallel"
)

// planShards partitions the snapshot for a k-anonymization job. The
// requested shard count is clamped so shards average at least 2k
// subscribers, then lowered further if the hash assignment leaves any
// shard below k (the minimum a shard needs to anonymize on its own).
// The result always has at least one shard and covers every record
// exactly once. The source may be an in-memory table or a columnar
// view; both shard by the same user hash, so the plan is identical
// across backends.
func planShards(t cdr.Source, users, k, requested int, seed uint64) []cdr.Source {
	max := users / (2 * k)
	if max < 1 {
		max = 1
	}
	n := requested
	if n <= 0 {
		n = parallel.DefaultWorkers()
	}
	if n > max {
		n = max
	}
	// Each attempt re-hashes every record, so back off geometrically: at
	// most log2(n) passes even when a client requests an absurd count.
	for ; n > 1; n /= 2 {
		shards := t.UserShards(n, seed)
		ok := true
		for _, s := range shards {
			if s.NumUsers() < k {
				ok = false
				break
			}
		}
		if ok {
			return shards
		}
	}
	return t.UserShards(1, seed)
}

// sizeShards predicts planShards' outcome without materializing any
// shard: the same clamp and geometric back-off, evaluated over per-shard
// distinct-user COUNTS (one pass collecting user names, then
// cdr.ShardOfUser per candidate count) instead of full record-cloned
// shard tables. The windowed dry-plan loop uses it to size every window
// up front — previously that loop cloned each window's records once per
// halving attempt and threw all of it away. Returns the effective shard
// count (empty shards dropped, as planShards drops them) and the
// subscriber count of the largest shard (the planner's sizing input).
// sizeShards(t, ...) == (len(s), maxShardUsers(s)) for s := planShards(t, ...)
// — pinned by TestSizeShardsMatchesPlanShards.
func sizeShards(t cdr.Source, users, k, requested int, seed uint64) (shards, maxUsers int) {
	max := users / (2 * k)
	if max < 1 {
		max = 1
	}
	n := requested
	if n <= 0 {
		n = parallel.DefaultWorkers()
	}
	if n > max {
		n = max
	}
	if n <= 1 {
		return 1, users
	}
	names := make(map[string]struct{}, users)
	_ = t.EachRecord(func(r cdr.Record) error {
		names[r.User] = struct{}{}
		return nil
	})
	for ; n > 1; n /= 2 {
		counts := make([]int, n)
		for u := range names {
			counts[cdr.ShardOfUser(u, n, seed)]++
		}
		ok := true
		nonEmpty, largest := 0, 0
		for _, c := range counts {
			if c == 0 {
				continue
			}
			nonEmpty++
			if c > largest {
				largest = c
			}
			if c < k {
				ok = false
				break
			}
		}
		if ok {
			return nonEmpty, largest
		}
	}
	return 1, users
}

// shardResult is the outcome of anonymizing one shard.
type shardResult struct {
	out   *core.Dataset
	stats *core.GloveStats
	err   error
}

// runShards anonymizes every shard through a bounded worker pool and
// merges the outputs. Group IDs are prefixed with the shard index so the
// merged dataset keeps unique identifiers. Because each shard is
// anonymized completely, every group of the union hides >= k
// subscribers and the k-anonymity guarantee is preserved.
//
// Each shard records a span under parent (with the engine's index-build
// and merge phases grafted in from GloveStats — no locks in the hot
// loop) and moves the shard-pool telemetry gauges; tel may be nil and
// parent may be the zero ActiveSpan.
//
// pool, when non-nil, lends warm engine sessions to the shard runs so
// repeated windows reuse index storage instead of reallocating it; a
// nil pool degrades every shard to a cold run (batch jobs pass nil).
func runShards(ctx context.Context, shards []cdr.Source, spec JobSpec, pool *core.SessionPool, tel *Telemetry, parent obs.ActiveSpan, onProgress func(shard int, frac float64)) (*core.Dataset, *core.GloveStats, error) {
	workers := spec.Workers
	if workers <= 0 {
		workers = parallel.DefaultWorkers()
	}
	// Split the CPU budget: the pool runs shards concurrently and each
	// GLOVE run gets the leftover share, so a 16-worker job over 2
	// shards still uses 16 CPUs (2 shards x 8 inner workers) rather
	// than idling 14 of them.
	poolWorkers := workers
	if poolWorkers > len(shards) {
		poolWorkers = len(shards)
	}
	innerWorkers := workers / poolWorkers
	if innerWorkers < 1 {
		innerWorkers = 1
	}

	// A failed shard cancels its siblings so the job surfaces the error
	// immediately instead of finishing the other quadratic runs first.
	runCtx, failFast := context.WithCancel(ctx)
	defer failFast()
	results := make([]shardResult, len(shards))
	err := parallel.ForContext(runCtx, len(shards), poolWorkers, func(i int) {
		span := parent.Child(obs.SpanShard, fmt.Sprintf("shard %d", i))
		tel.shardStarted()
		start := time.Now()
		results[i] = runShard(runCtx, shards[i], spec, pool, innerWorkers, func(done, total int) {
			if onProgress != nil && total > 0 {
				onProgress(i, float64(done)/float64(total))
			}
		})
		tel.shardDone()
		annotateShardSpan(span, start, results[i])
		span.End()
		if results[i].err != nil {
			failFast()
		}
	})
	var cancelled error
	for i, r := range results {
		if r.err == nil {
			continue
		}
		if !errors.Is(r.err, context.Canceled) {
			return nil, nil, fmt.Errorf("service: shard %d/%d: %w", i+1, len(shards), r.err)
		}
		cancelled = r.err
	}
	if err != nil {
		// No genuine shard error: the job itself was cancelled.
		return nil, nil, err
	}
	if cancelled != nil {
		return nil, nil, cancelled
	}
	return mergeShardResults(results, len(shards) > 1)
}

// annotateShardSpan records the shard outcome on its span: the input
// size, merge and kernel accounting, and — grafted from the engine's
// GloveStats timing — index_build and merge child spans approximating
// where the shard's wall clock went (chunked shards sum their blocks'
// phases, so the two children may not tile the shard span exactly).
func annotateShardSpan(span obs.ActiveSpan, start time.Time, r shardResult) {
	if r.err != nil {
		span.SetAttr("error", r.err.Error())
		return
	}
	st := r.stats
	if st == nil {
		return
	}
	span.SetAttr("fingerprints", st.InputFingerprints)
	span.SetAttr("merges", st.Merges)
	if st.EffortKernelCalls > 0 {
		span.SetAttr("kernel_prune_ratio",
			float64(st.EffortKernelPruned)/float64(st.EffortKernelCalls))
	}
	build := time.Duration(st.IndexBuildNanos)
	span.AddCompleted(obs.SpanIndexBuild, "", start, build, nil)
	span.AddCompleted(obs.SpanMerge, "", start.Add(build), time.Duration(st.MergeNanos),
		map[string]any{"merges": st.Merges})
}

// runShard converts one shard source into a fingerprint dataset and
// anonymizes it through the core planner, which resolves the spec's
// strategy/index (or the auto rules) for this shard's size. With a
// warm pool the run borrows a session (recycled index storage; output
// pinned byte-identical to cold by the engine's warm==cold tests) and
// returns it for the next window's shards.
func runShard(ctx context.Context, t cdr.Source, spec JobSpec, pool *core.SessionPool, workers int, progress func(done, total int)) shardResult {
	ds, err := t.BuildDataset()
	if err != nil {
		return shardResult{err: err}
	}
	sess := pool.Get()
	out, stats, err := sess.Anonymize(ctx, ds, anonymizeOptions(spec, workers, progress))
	pool.Put(sess)
	if err != nil {
		return shardResult{err: err}
	}
	return shardResult{out: out, stats: stats}
}

// mergeShardResults concatenates shard outputs into one dataset and sums
// their statistics. When prefix is set, group IDs gain an "s<i>:" shard
// prefix to stay unique across shards.
func mergeShardResults(results []shardResult, prefix bool) (*core.Dataset, *core.GloveStats, error) {
	total := &core.GloveStats{}
	var fps []*core.Fingerprint
	for i, r := range results {
		for _, f := range r.out.Fingerprints {
			if prefix {
				f.ID = fmt.Sprintf("s%d:%s", i, f.ID)
			}
			fps = append(fps, f)
		}
		total.Add(r.stats)
	}
	out := &core.Dataset{Fingerprints: fps}
	total.OutputFingerprints = out.Len()
	total.OutputSamples = out.TotalSamples()
	return out, total, nil
}
