package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/cdr"
	"repro/internal/core"
)

func TestJobSpecValidateStrategy(t *testing.T) {
	good := []JobSpec{
		{DatasetID: "ds-1", K: 2, Strategy: "auto"},
		{DatasetID: "ds-1", K: 2, Strategy: "single"},
		{DatasetID: "ds-1", K: 2, Strategy: "chunked", ChunkSize: 10},
		{DatasetID: "ds-1", K: 2, Index: "dense"},
		{DatasetID: "ds-1", K: 2, Index: "sparse"},
		{DatasetID: "ds-1", K: 3, ChunkSize: 6}, // auto strategy allows chunking
	}
	for i, spec := range good {
		if err := spec.Validate(); err != nil {
			t.Errorf("good spec %d rejected: %v", i, err)
		}
	}
	bad := []JobSpec{
		{DatasetID: "ds-1", K: 2, Strategy: "gpu"},
		{DatasetID: "ds-1", K: 2, Index: "matrix"},
		{DatasetID: "ds-1", K: 2, ChunkSize: -5},
		{DatasetID: "ds-1", K: 5, ChunkSize: 9},                      // < 2k
		{DatasetID: "ds-1", K: 2, Strategy: "single", ChunkSize: 10}, // contradictory
	}
	for i, spec := range bad {
		if err := spec.Validate(); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

// Invalid planner parameters are rejected at submission over HTTP with
// 400, before any dataset work happens.
func TestServerSubmitBadPlannerParams(t *testing.T) {
	srv, _ := newTestServer(t)
	for _, body := range []string{
		`{"dataset_id": "ds-1", "k": 2, "strategy": "warp"}`,
		`{"dataset_id": "ds-1", "k": 2, "index": "quadtree"}`,
		`{"dataset_id": "ds-1", "k": 2, "chunk_size": -1}`,
		`{"dataset_id": "ds-1", "k": 4, "chunk_size": 6}`,
		`{"dataset_id": "ds-1", "k": 2, "strategy": "single", "chunk_size": 8}`,
	} {
		resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var e map[string]string
		json.NewDecoder(resp.Body).Decode(&e)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("spec %s: status %d, want 400 (error %q)", body, resp.StatusCode, e["error"])
		}
	}
}

// A job submitted with an explicit strategy runs through the planner
// end-to-end: the resolved plan is surfaced on the status and in
// /v1/metrics, and the result is still k-anonymous.
func TestServerExplicitStrategyEndToEnd(t *testing.T) {
	srv, mgr := newTestServer(t)
	table := synthTable(t, 40, 2)
	var raw bytes.Buffer
	if err := cdr.WriteCSV(&raw, table); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/datasets?name=strat&days=2", "text/csv", &raw)
	if err != nil {
		t.Fatal(err)
	}
	var ds DatasetInfo
	json.NewDecoder(resp.Body).Decode(&ds)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}

	spec, _ := json.Marshal(JobSpec{
		DatasetID: ds.ID, K: 2, Shards: 1,
		Strategy: "chunked", ChunkSize: 10, Index: "sparse",
	})
	resp, err = http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	var job JobStatus
	json.NewDecoder(resp.Body).Decode(&job)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", resp.StatusCode, job.Error)
	}

	final := waitForState(t, mgr, job.ID, func(s JobStatus) bool { return s.State.Terminal() })
	if final.State != JobDone {
		t.Fatalf("job finished %s: %s", final.State, final.Error)
	}
	if final.Plan == nil {
		t.Fatal("done job carries no plan")
	}
	if final.Plan.Strategy != core.StrategyChunked || final.Plan.ChunkSize != 10 {
		t.Errorf("plan = %+v, want chunked at 10", final.Plan)
	}
	if final.Plan.Index != core.IndexSparse {
		t.Errorf("plan index = %q, want sparse", final.Plan.Index)
	}

	result, err := mgr.Result(job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.ValidateKAnonymity(result, 2); err != nil {
		t.Errorf("result not 2-anonymous: %v", err)
	}
	if result.Users() != ds.Users {
		t.Errorf("result hides %d users, want %d", result.Users(), ds.Users)
	}

	var rep MetricsReport
	getJSON(t, srv.URL+"/v1/metrics", &rep)
	if rep.JobsByStrategy[core.StrategyChunked] != 1 {
		t.Errorf("jobs_by_strategy = %v, want one chunked", rep.JobsByStrategy)
	}
	if rep.JobsByIndex[core.IndexSparse] != 1 {
		t.Errorf("jobs_by_index = %v, want one sparse", rep.JobsByIndex)
	}
}

// Manager-wide defaults fill empty spec fields before validation, so a
// daemon started with gloved -strategy/-chunk-size/-index steers every
// plain submission.
func TestManagerPlannerDefaults(t *testing.T) {
	reg := NewRegistry()
	mgr := NewManager(reg, ManagerOptions{
		DefaultStrategy:  "chunked",
		DefaultChunkSize: 12,
		DefaultIndex:     "sparse",
	})
	defer mgr.Close()

	info := ingestSynth(t, reg, 30, 2)
	st, err := mgr.Submit(JobSpec{DatasetID: info.ID, K: 2, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.Spec.Strategy != "chunked" || st.Spec.ChunkSize != 12 || st.Spec.Index != "sparse" {
		t.Errorf("defaults not applied: %+v", st.Spec)
	}
	final := waitForState(t, mgr, st.ID, func(s JobStatus) bool { return s.State.Terminal() })
	if final.State != JobDone {
		t.Fatalf("job finished %s: %s", final.State, final.Error)
	}
	if final.Plan == nil || final.Plan.Strategy != core.StrategyChunked || final.Plan.Index != core.IndexSparse {
		t.Errorf("plan = %+v, want chunked/sparse", final.Plan)
	}

	// An explicit spec value wins over the default.
	st2, err := mgr.Submit(JobSpec{DatasetID: info.ID, K: 2, Shards: 1, Strategy: "single", ChunkSize: -0, Index: "dense"})
	if err != nil {
		t.Fatal(err)
	}
	if st2.Spec.Strategy != "single" || st2.Spec.Index != "dense" {
		t.Errorf("explicit spec overridden: %+v", st2.Spec)
	}
	waitForState(t, mgr, st2.ID, func(s JobStatus) bool { return s.State.Terminal() })

	// A bad daemon default surfaces at submission.
	badMgr := NewManager(reg, ManagerOptions{DefaultStrategy: "warp"})
	defer badMgr.Close()
	if _, err := badMgr.Submit(JobSpec{DatasetID: info.ID, K: 2}); err == nil {
		t.Error("bad default strategy accepted")
	}
}
