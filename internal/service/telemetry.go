package service

import (
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// Telemetry owns every instrument the service exports at GET /metrics.
// One Telemetry backs one Registry+Manager+Server trio; NewManager
// creates it automatically when ManagerOptions leaves it nil, so the
// existing NewRegistry/NewManager/NewServer wiring gains full
// instrumentation without signature changes. All methods are nil-safe:
// a nil *Telemetry is an inert sink, so unit tests that assemble bare
// Jobs or Registries never need one.
//
// Metric names are append-only wire vocabulary (DESIGN.md Sec. 10).
type Telemetry struct {
	// Reg renders the Prometheus exposition for GET /metrics.
	Reg *obs.Registry

	start time.Time

	httpRequests  *obs.CounterVec // glove_http_requests_total{route,method,status}
	httpDuration  *obs.HistogramVec
	httpInFlight  *obs.Gauge
	httpRespBytes *obs.CounterVec

	datasets       *obs.Gauge
	datasetRecords *obs.Gauge
	ingestRecords  *obs.Counter
	ingestBytes    *obs.Counter

	jobsSubmitted  *obs.Counter
	jobsRunning    *obs.Gauge
	jobsFinished   *obs.CounterVec // {state}
	jobsPlanned    *obs.CounterVec // {strategy,index}
	jobDuration    *obs.Histogram
	windowDuration *obs.Histogram
	windowReleases *obs.Counter
	windowCommit   *obs.Histogram
	streamLag      *obs.Gauge
	shardsRunning  *obs.Gauge
	shardsTotal    *obs.Counter

	mergesTotal       *obs.Counter
	kernelCalls       *obs.Counter
	kernelPruned      *obs.Counter
	indexBuildSeconds *obs.Counter
	mergeSeconds      *obs.Counter
	suppressedSamples *obs.Counter

	walFsync      *obs.Histogram
	walBytes      *obs.Counter
	recoveredJobs *obs.CounterVec // {outcome}

	queueOnce    sync.Once
	bootOnce     sync.Once
	colstoreOnce sync.Once

	mu     sync.Mutex
	bootID string
}

// NewTelemetry registers the service instrument set on a fresh obs
// registry.
func NewTelemetry() *Telemetry {
	r := obs.NewRegistry()
	t := &Telemetry{Reg: r, start: time.Now()}

	t.httpRequests = r.CounterVec("glove_http_requests_total",
		"HTTP requests served, by matched route pattern, method, and status.",
		"route", "method", "status")
	t.httpDuration = r.HistogramVec("glove_http_request_duration_seconds",
		"HTTP request latency by matched route pattern.", nil, "route")
	t.httpInFlight = r.Gauge("glove_http_requests_in_flight",
		"HTTP requests currently being served.")
	t.httpRespBytes = r.CounterVec("glove_http_response_bytes_total",
		"Response body bytes written, by matched route pattern.", "route")

	t.datasets = r.Gauge("glove_datasets",
		"Datasets currently registered.")
	t.datasetRecords = r.Gauge("glove_dataset_records",
		"Records across all registered datasets.")
	t.ingestRecords = r.Counter("glove_ingest_records_total",
		"Records accepted by ingestion and appends.")
	t.ingestBytes = r.Counter("glove_ingest_bytes_total",
		"Request body bytes consumed by ingestion and appends.")

	t.jobsSubmitted = r.Counter("glove_jobs_submitted_total",
		"Jobs accepted by Submit.")
	t.jobsRunning = r.Gauge("glove_jobs_running",
		"Jobs currently executing.")
	t.jobsFinished = r.CounterVec("glove_jobs_finished_total",
		"Jobs reaching a terminal state, by state.", "state")
	t.jobsPlanned = r.CounterVec("glove_jobs_planned_total",
		"Jobs by the execution plan the core planner resolved.",
		"strategy", "index")
	t.jobDuration = r.Histogram("glove_job_duration_seconds",
		"Wall-clock duration of finished jobs.", nil)
	t.windowDuration = r.Histogram("glove_window_duration_seconds",
		"Wall-clock duration of committed windows of windowed jobs.", nil)
	t.windowReleases = r.Counter("glove_window_releases_total",
		"Committed per-window releases across windowed jobs.")
	t.windowCommit = r.Histogram("glove_window_commit_seconds",
		"Wall-clock seconds from a window becoming committable to its release being committed (follow and windowed jobs).", nil)
	t.streamLag = r.Gauge("glove_stream_lag_windows",
		"Windows closed by the feed but not yet committed, across running follow jobs.")
	t.shardsRunning = r.Gauge("glove_shards_running",
		"Shard anonymization runs currently executing (pool utilization).")
	t.shardsTotal = r.Counter("glove_shards_total",
		"Shard anonymization runs started.")

	t.mergesTotal = r.Counter("glove_merges_total",
		"GLOVE pairwise merge operations across finished jobs.")
	t.kernelCalls = r.Counter("glove_effort_kernel_calls_total",
		"Pruned effort-kernel invocations across finished jobs.")
	t.kernelPruned = r.Counter("glove_effort_kernel_pruned_total",
		"Effort-kernel invocations that early-exited via threshold pruning.")
	t.indexBuildSeconds = r.Counter("glove_index_build_seconds_total",
		"Wall-clock seconds spent building pair-effort indexes.")
	t.mergeSeconds = r.Counter("glove_merge_seconds_total",
		"Wall-clock seconds spent in GLOVE merge loops.")
	t.suppressedSamples = r.Counter("glove_suppressed_samples_total",
		"Original samples removed by suppression across finished jobs.")

	t.walFsync = r.Histogram("glove_wal_fsync_seconds",
		"Write-ahead journal fsync latency (group commits, rotations, compactions).", nil)
	t.walBytes = r.Counter("glove_wal_bytes_total",
		"Framed bytes appended to the write-ahead journal.")
	t.recoveredJobs = r.CounterVec("glove_recovered_jobs_total",
		"Jobs rebuilt from the journal at boot, by recovery outcome.", "outcome")
	return t
}

// registerQueueDepth exposes the manager's queue depth as a live gauge;
// only the first manager attached to this telemetry wires it.
func (t *Telemetry) registerQueueDepth(fn func() float64) {
	if t == nil {
		return
	}
	t.queueOnce.Do(func() {
		t.Reg.GaugeFunc("glove_job_queue_depth",
			"Jobs queued but not yet started.", fn)
	})
}

// registerColstore exposes the columnar storage tier's live footprint:
// resident column bytes and spilled chunks as gauges over the live
// stores, fault-ins and spill-outs as monotone counters surviving
// dataset deletion. Only the first registry attached to this telemetry
// wires them; a table-only registry exports zeros.
func (t *Telemetry) registerColstore(resident, spilled, faults, spills func() float64) {
	if t == nil {
		return
	}
	t.colstoreOnce.Do(func() {
		t.Reg.GaugeFunc("colstore_resident_bytes",
			"Resident column bytes across the registry's columnar stores.", resident)
		t.Reg.GaugeFunc("colstore_spilled_chunks",
			"Column chunks currently living only in the spill file.", spilled)
		t.Reg.CounterFunc("colstore_chunk_faults_total",
			"Column chunks faulted back in from the spill file.", faults)
		t.Reg.CounterFunc("colstore_chunk_spills_total",
			"Column chunks written out to the spill file.", spills)
	})
}

// registerBoot attaches the process-level runtime gauges and boot-info
// series; only the first server attached to this telemetry wires them.
func (t *Telemetry) registerBoot(bootID string) {
	if t == nil {
		return
	}
	t.bootOnce.Do(func() {
		t.mu.Lock()
		t.bootID = bootID
		t.mu.Unlock()
		obs.RegisterRuntime(t.Reg, bootID, t.start)
	})
}

// Runtime snapshots process health for the JSON metrics report.
func (t *Telemetry) Runtime() obs.RuntimeInfo {
	if t == nil {
		return obs.RuntimeInfo{}
	}
	t.mu.Lock()
	bootID := t.bootID
	t.mu.Unlock()
	return obs.ReadRuntime(bootID, t.start)
}

// --- HTTP middleware hooks ---

func (t *Telemetry) httpStart() {
	if t != nil {
		t.httpInFlight.Inc()
	}
}

func (t *Telemetry) httpDone(route, method string, status int, bytes int64, d time.Duration) {
	if t == nil {
		return
	}
	t.httpInFlight.Dec()
	t.httpRequests.With(route, method, strconv.Itoa(status)).Inc()
	t.httpDuration.With(route).Observe(d.Seconds())
	t.httpRespBytes.With(route).Add(float64(bytes))
}

// --- registry hooks ---

func (t *Telemetry) datasetTotals(datasets, records int) {
	if t != nil {
		t.datasets.Set(float64(datasets))
		t.datasetRecords.Set(float64(records))
	}
}

func (t *Telemetry) ingested(records int, bytes int64) {
	if t != nil {
		t.ingestRecords.Add(float64(records))
		t.ingestBytes.Add(float64(bytes))
	}
}

// --- manager hooks ---

func (t *Telemetry) jobSubmitted() {
	if t != nil {
		t.jobsSubmitted.Inc()
	}
}

func (t *Telemetry) jobStarted() {
	if t != nil {
		t.jobsRunning.Inc()
	}
}

func (t *Telemetry) jobPlanned(p *core.Plan) {
	if t != nil && p != nil {
		t.jobsPlanned.With(string(p.Strategy), string(p.Index)).Inc()
	}
}

// jobFinished folds a terminal job into the counters. stats is nil for
// failed and cancelled runs.
func (t *Telemetry) jobFinished(state JobState, d time.Duration, stats *core.GloveStats) {
	if t == nil {
		return
	}
	t.jobsRunning.Dec()
	t.jobsFinished.With(string(state)).Inc()
	t.jobDuration.Observe(d.Seconds())
	if stats != nil {
		t.mergesTotal.Add(float64(stats.Merges))
		t.kernelCalls.Add(float64(stats.EffortKernelCalls))
		t.kernelPruned.Add(float64(stats.EffortKernelPruned))
		t.indexBuildSeconds.Add(time.Duration(stats.IndexBuildNanos).Seconds())
		t.mergeSeconds.Add(time.Duration(stats.MergeNanos).Seconds())
		t.suppressedSamples.Add(float64(stats.SuppressedSamples))
	}
}

// jobNeverStarted accounts a queued job cancelled before it ran: it is
// terminal (counted in jobs_finished_total) but was never running, so
// the running gauge must not move.
func (t *Telemetry) jobNeverStarted() {
	if t != nil {
		t.jobsFinished.With(string(JobCancelled)).Inc()
	}
}

func (t *Telemetry) windowCommitted(d time.Duration) {
	if t != nil {
		t.windowReleases.Inc()
		t.windowDuration.Observe(d.Seconds())
		t.windowCommit.Observe(d.Seconds())
	}
}

// streamLagDelta moves the shared stream-lag gauge by a delta: each
// follow job adds newly closed windows as it discovers them and
// subtracts what it commits (and its remainder on exit), so concurrent
// follow jobs aggregate correctly without a last-writer-wins Set.
func (t *Telemetry) streamLagDelta(d float64) {
	if t != nil && d != 0 {
		t.streamLag.Add(d)
	}
}

// --- durability hooks ---

// walSynced and walAppended are handed to wal.Options as method values;
// both tolerate a nil receiver like every other hook.
func (t *Telemetry) walSynced(d time.Duration) {
	if t != nil {
		t.walFsync.Observe(d.Seconds())
	}
}

func (t *Telemetry) walAppended(n int) {
	if t != nil {
		t.walBytes.Add(float64(n))
	}
}

// jobRecovered counts one job rebuilt at boot: outcome "restored"
// (terminal job served verbatim), "requeued" (interrupted batch or
// windowed job restarted from scratch), or "resumed" (follow job
// continuing at its last committed window).
func (t *Telemetry) jobRecovered(outcome string) {
	if t != nil {
		t.recoveredJobs.With(outcome).Inc()
	}
}

func (t *Telemetry) shardStarted() {
	if t != nil {
		t.shardsTotal.Inc()
		t.shardsRunning.Inc()
	}
}

func (t *Telemetry) shardDone() {
	if t != nil {
		t.shardsRunning.Dec()
	}
}
