package service

import "repro/internal/api"

// The wire DTOs live in internal/api — the single home of the
// versioned contract, shared verbatim with pkg/client so server and
// SDK can never drift (DESIGN.md Sec. 9). The service aliases them so
// the rest of this package (and its tests) keep their natural names.
type (
	DatasetInfo   = api.DatasetInfo
	JobSpec       = api.JobSpec
	JobStatus     = api.JobStatus
	JobState      = api.JobState
	WindowState   = api.WindowState
	WindowStatus  = api.WindowStatus
	MetricsReport = api.MetricsReport
)

const (
	JobQueued    = api.JobQueued
	JobRunning   = api.JobRunning
	JobDone      = api.JobDone
	JobFailed    = api.JobFailed
	JobCancelled = api.JobCancelled

	WindowPending = api.WindowPending
	WindowRunning = api.WindowRunning
	WindowDone    = api.WindowDone
	WindowAborted = api.WindowAborted
	WindowEmpty   = api.WindowEmpty
)
