// Package stats provides the statistical toolkit used throughout the
// GLOVE reproduction: empirical distribution functions, quantiles,
// summary statistics, the inverse of the standard normal CDF, and the
// Tail Weight Index (TWI) the paper uses in Sec. 5.3 to show that the
// temporal components of sample stretch efforts are heavy tailed.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned by constructors and estimators that need at least
// one observation.
var ErrEmpty = errors.New("stats: empty sample")

// ECDF is an empirical cumulative distribution function over a sample.
// The zero value is empty and unusable; construct with NewECDF.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an empirical CDF from the observations in xs. The input
// slice is copied and may be reused by the caller. NaN observations are
// rejected.
func NewECDF(xs []float64) (*ECDF, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	for _, v := range s {
		if math.IsNaN(v) {
			return nil, errors.New("stats: NaN observation")
		}
	}
	sort.Float64s(s)
	return &ECDF{sorted: s}, nil
}

// Len returns the number of observations.
func (e *ECDF) Len() int { return len(e.sorted) }

// At returns the fraction of observations <= x.
func (e *ECDF) At(x float64) float64 {
	// sort.SearchFloat64s returns the first index with sorted[i] >= x; we
	// need the count of values <= x.
	i := sort.Search(len(e.sorted), func(i int) bool { return e.sorted[i] > x })
	return float64(i) / float64(len(e.sorted))
}

// Quantile returns the p-quantile (0 <= p <= 1) using the nearest-rank
// method with linear interpolation (Hyndman-Fan type 7, the common
// default).
func (e *ECDF) Quantile(p float64) float64 {
	return quantileSorted(e.sorted, p)
}

// Min and Max return the sample extremes.
func (e *ECDF) Min() float64 { return e.sorted[0] }

// Max returns the largest observation.
func (e *ECDF) Max() float64 { return e.sorted[len(e.sorted)-1] }

// Points returns up to n (x, F(x)) pairs suitable for plotting or for
// printing a CDF series. The points are evenly spaced in probability and
// always include the extremes.
func (e *ECDF) Points(n int) []CDFPoint {
	if n < 2 {
		n = 2
	}
	pts := make([]CDFPoint, 0, n)
	for i := 0; i < n; i++ {
		p := float64(i) / float64(n-1)
		x := e.Quantile(p)
		pts = append(pts, CDFPoint{X: x, F: p})
	}
	return pts
}

// CDFPoint is one point of a CDF series: F is the cumulative probability
// at value X.
type CDFPoint struct {
	X float64
	F float64
}

// quantileSorted computes the type-7 quantile of an ascending-sorted
// non-empty slice.
func quantileSorted(s []float64, p float64) float64 {
	if p <= 0 {
		return s[0]
	}
	if p >= 1 {
		return s[len(s)-1]
	}
	h := p * float64(len(s)-1)
	lo := int(math.Floor(h))
	hi := lo + 1
	if hi >= len(s) {
		return s[lo]
	}
	frac := h - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Quantile computes the p-quantile of an unsorted sample without building
// an ECDF. It returns an error on empty input.
func Quantile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return quantileSorted(s, p), nil
}

// Summary holds the descriptive statistics reported in the paper's
// tables and figure annotations.
type Summary struct {
	N      int
	Mean   float64
	Median float64
	P25    float64
	P75    float64
	Min    float64
	Max    float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	var sum float64
	for _, v := range s {
		sum += v
	}
	return Summary{
		N:      len(s),
		Mean:   sum / float64(len(s)),
		Median: quantileSorted(s, 0.5),
		P25:    quantileSorted(s, 0.25),
		P75:    quantileSorted(s, 0.75),
		Min:    s[0],
		Max:    s[len(s)-1],
	}, nil
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g median=%.4g p25=%.4g p75=%.4g min=%.4g max=%.4g",
		s.N, s.Mean, s.Median, s.P25, s.P75, s.Min, s.Max)
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, v := range xs {
		sum += v
	}
	return sum / float64(len(xs))
}

// NormQuantile returns the p-quantile of the standard normal
// distribution, using the Acklam rational approximation (relative error
// below 1.15e-9 over the full range). It panics if p is outside (0, 1).
func NormQuantile(p float64) float64 {
	if p <= 0 || p >= 1 || math.IsNaN(p) {
		panic(fmt.Sprintf("stats: NormQuantile of %v outside (0,1)", p))
	}
	// Coefficients of the Acklam approximation.
	a := [6]float64{
		-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00,
	}
	b := [5]float64{
		-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01,
	}
	c := [6]float64{
		-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00,
	}
	d := [4]float64{
		7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00,
	}
	const pLow, pHigh = 0.02425, 1 - 0.02425

	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= pHigh:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
}

// TWI computes the Tail Weight Index of a sample (Hoaglin, Mosteller,
// Tukey, "Understanding Robust and Exploratory Data Analysis", 1983): the
// upper-tail quantile spread of the sample normalized by that of the
// standard normal distribution,
//
//	TWI = [(q99 - q50) / (q75 - q50)] / [(z99 - z50) / (z75 - z50)]
//
// so a Gaussian sample scores ~1. The calibration matches the paper's
// footnote 5: an Exp(1) sample scores ~1.6 and a Pareto sample with shape
// 1 scores ~14. Values >= 1.5 indicate a heavy tail.
//
// Degenerate samples whose interquartile spread (q75 - q50) is zero have
// an undefined tail shape; TWI returns an error for those and for samples
// with fewer than 4 observations.
func TWI(xs []float64) (float64, error) {
	if len(xs) < 4 {
		return 0, fmt.Errorf("stats: TWI needs >= 4 observations, got %d", len(xs))
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	q50 := quantileSorted(s, 0.50)
	q75 := quantileSorted(s, 0.75)
	q99 := quantileSorted(s, 0.99)
	if q75-q50 <= 0 {
		return 0, errors.New("stats: TWI undefined (zero interquartile spread)")
	}
	zRatio := NormQuantile(0.99) / NormQuantile(0.75) // z50 = 0
	return ((q99 - q50) / (q75 - q50)) / zRatio, nil
}

// Histogram counts observations into nbins equal-width bins over
// [min, max]. Out-of-range observations are clamped to the end bins. It
// is used by the experiment drivers to print compact distribution rows.
func Histogram(xs []float64, min, max float64, nbins int) ([]int, error) {
	if nbins <= 0 {
		return nil, fmt.Errorf("stats: nbins = %d must be positive", nbins)
	}
	if max <= min {
		return nil, fmt.Errorf("stats: bad range [%g, %g]", min, max)
	}
	counts := make([]int, nbins)
	w := (max - min) / float64(nbins)
	for _, v := range xs {
		i := int((v - min) / w)
		if i < 0 {
			i = 0
		}
		if i >= nbins {
			i = nbins - 1
		}
		counts[i]++
	}
	return counts, nil
}
