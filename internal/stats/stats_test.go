package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewECDFEmpty(t *testing.T) {
	if _, err := NewECDF(nil); err == nil {
		t.Error("NewECDF(nil) did not fail")
	}
}

func TestNewECDFNaN(t *testing.T) {
	if _, err := NewECDF([]float64{1, math.NaN()}); err == nil {
		t.Error("NewECDF with NaN did not fail")
	}
}

func TestECDFAt(t *testing.T) {
	e, err := NewECDF([]float64{1, 2, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		x    float64
		want float64
	}{
		{0.5, 0}, {1, 0.25}, {1.5, 0.25}, {2, 0.75}, {2.5, 0.75}, {3, 1}, {10, 1},
	}
	for _, c := range cases {
		if got := e.At(c.x); got != c.want {
			t.Errorf("At(%g) = %g, want %g", c.x, got, c.want)
		}
	}
}

func TestECDFAtMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = rng.NormFloat64() * 10
	}
	e, err := NewECDF(xs)
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for x := -40.0; x <= 40; x += 0.5 {
		f := e.At(x)
		if f < prev {
			t.Fatalf("CDF decreased at x=%g: %g < %g", x, f, prev)
		}
		prev = f
	}
	if e.At(math.Inf(1)) != 1 {
		t.Error("CDF at +inf is not 1")
	}
}

func TestECDFQuantileKnown(t *testing.T) {
	e, err := NewECDF([]float64{10, 20, 30, 40, 50})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ p, want float64 }{
		{0, 10}, {0.25, 20}, {0.5, 30}, {0.75, 40}, {1, 50}, {0.125, 15},
	}
	for _, c := range cases {
		if got := e.Quantile(c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%g) = %g, want %g", c.p, got, c.want)
		}
	}
}

func TestQuantileUnsortedMatchesECDF(t *testing.T) {
	f := func(raw []float64) bool {
		xs := raw[:0]
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		e, err := NewECDF(xs)
		if err != nil {
			return false
		}
		for _, p := range []float64{0, 0.1, 0.5, 0.9, 1} {
			q, err := Quantile(xs, p)
			if err != nil || q != e.Quantile(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestECDFPoints(t *testing.T) {
	e, err := NewECDF([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	if err != nil {
		t.Fatal(err)
	}
	pts := e.Points(5)
	if len(pts) != 5 {
		t.Fatalf("Points(5) returned %d points", len(pts))
	}
	if pts[0].X != 1 || pts[0].F != 0 {
		t.Errorf("first point %+v, want {1 0}", pts[0])
	}
	if pts[4].X != 10 || pts[4].F != 1 {
		t.Errorf("last point %+v, want {10 1}", pts[4])
	}
	if !sort.SliceIsSorted(pts, func(i, j int) bool { return pts[i].X < pts[j].X }) {
		t.Error("points not sorted by X")
	}
}

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{4, 1, 3, 2})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 4 || s.Mean != 2.5 || s.Median != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Errorf("Summarize = %+v", s)
	}
	if s.P25 != 1.75 || s.P75 != 3.25 {
		t.Errorf("quartiles = %g, %g; want 1.75, 3.25", s.P25, s.P75)
	}
	if _, err := Summarize(nil); err == nil {
		t.Error("Summarize(nil) did not fail")
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if Mean([]float64{2, 4}) != 3 {
		t.Error("Mean([2 4]) != 3")
	}
}

func TestNormQuantileKnownValues(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.75, 0.674489750196082},
		{0.975, 1.959963984540054},
		{0.99, 2.326347874040841},
		{0.001, -3.090232306167814},
	}
	for _, c := range cases {
		if got := NormQuantile(c.p); math.Abs(got-c.want) > 1e-8 {
			t.Errorf("NormQuantile(%g) = %.12f, want %.12f", c.p, got, c.want)
		}
	}
}

func TestNormQuantileSymmetry(t *testing.T) {
	for _, p := range []float64{0.01, 0.1, 0.3, 0.45} {
		if d := NormQuantile(p) + NormQuantile(1-p); math.Abs(d) > 1e-9 {
			t.Errorf("NormQuantile(%g) + NormQuantile(%g) = %g, want 0", p, 1-p, d)
		}
	}
}

func TestNormQuantilePanicsOutsideRange(t *testing.T) {
	for _, p := range []float64{0, 1, -0.1, 1.1, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NormQuantile(%v) did not panic", p)
				}
			}()
			NormQuantile(p)
		}()
	}
}

// The TWI calibration points from the paper's footnote 5: Exp(1) has TWI
// ~1.6 and Pareto(shape 1) has TWI ~14. A Gaussian sample should score
// ~1. We check against the analytic quantiles to avoid sampling noise.
func TestTWICalibration(t *testing.T) {
	// Build large ideal samples via inverse-CDF at evenly spaced
	// probabilities (a deterministic "perfect" sample).
	n := 200000
	exp := make([]float64, n)
	par := make([]float64, n)
	nor := make([]float64, n)
	for i := 0; i < n; i++ {
		p := (float64(i) + 0.5) / float64(n)
		exp[i] = -math.Log(1 - p)
		par[i] = 1 / (1 - p)
		nor[i] = NormQuantile(p)
	}
	cases := []struct {
		name string
		xs   []float64
		want float64
		tol  float64
	}{
		{"exp", exp, 1.6, 0.1},
		{"pareto", par, 14, 0.8},
		{"normal", nor, 1.0, 0.02},
	}
	for _, c := range cases {
		got, err := TWI(c.xs)
		if err != nil {
			t.Fatalf("TWI(%s): %v", c.name, err)
		}
		if math.Abs(got-c.want) > c.tol {
			t.Errorf("TWI(%s) = %.3f, want %.3f +- %.2f", c.name, got, c.want, c.tol)
		}
	}
}

func TestTWIErrors(t *testing.T) {
	if _, err := TWI([]float64{1, 2, 3}); err == nil {
		t.Error("TWI of 3 observations did not fail")
	}
	if _, err := TWI([]float64{5, 5, 5, 5, 5}); err == nil {
		t.Error("TWI of constant sample did not fail")
	}
}

func TestTWIScaleInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = rng.ExpFloat64()
	}
	a, err := TWI(xs)
	if err != nil {
		t.Fatal(err)
	}
	scaled := make([]float64, len(xs))
	for i, v := range xs {
		scaled[i] = 1000*v + 7
	}
	b, err := TWI(scaled)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-b) > 1e-9 {
		t.Errorf("TWI not affine invariant: %g vs %g", a, b)
	}
}

func TestHistogram(t *testing.T) {
	counts, err := Histogram([]float64{-1, 0, 0.5, 1, 2.5, 9, 11}, 0, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	if counts[0] != 3 { // -1 clamps in, 0 and 0.5 in bin 0
		t.Errorf("bin 0 = %d, want 3", counts[0])
	}
	if counts[9] != 2 { // 9 in last bin, 11 clamps in
		t.Errorf("bin 9 = %d, want 2", counts[9])
	}
	var total int
	for _, c := range counts {
		total += c
	}
	if total != 7 {
		t.Errorf("total = %d, want 7", total)
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := Histogram(nil, 0, 1, 0); err == nil {
		t.Error("nbins=0 did not fail")
	}
	if _, err := Histogram(nil, 1, 1, 5); err == nil {
		t.Error("empty range did not fail")
	}
}

func BenchmarkECDFAt(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 100000)
	for i := range xs {
		xs[i] = rng.Float64()
	}
	e, err := NewECDF(xs)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.At(0.42)
	}
}
