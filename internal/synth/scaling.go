package synth

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"repro/internal/cdr"
	"repro/internal/core"
	"repro/internal/geo"
)

// ScalingDataset generates a clustered fingerprint dataset of n
// fingerprints with samplesPer samples each — the input generator of
// the 100k/300k/1M scaling benchmarks. The full Generate pipeline
// (per-subscriber mobility, circadian event process) costs minutes at
// 1M subscribers, so this generator reproduces only the properties the
// pair-selection index cares about:
//
//   - A many-city cluster structure with few-kilometre anchor
//     dispersion, over an extent that grows with sqrt(n) so grid-cell
//     occupancy — and with it per-slot index cost — stays constant
//     across tiers and the series measures O(n) scaling rather than
//     density growth. City choice is uniform: a Zipf-style skew piles
//     the head cities hundreds deep per grid cell and the bench time
//     becomes a measure of one hot spot instead of the index.
//   - Diurnally aligned timestamps: every subscriber's samples sit near
//     the same few daily anchor minutes, jittered. Real CDR activity is
//     circadian, and the sparse index depends on it — temporal alignment
//     is what keeps nearest-neighbour efforts below the spatial weight
//     so the ring scan's spatial lower bound can terminate. Uniform
//     random times saturate the temporal term for every pair and
//     degenerate each rebuild into a full grid scan.
//
// Deterministic given seed.
func ScalingDataset(n, samplesPer int, seed int64) *core.Dataset {
	rng := rand.New(rand.NewSource(seed))
	// ~11 fingerprints per 10 km grid cell on average at every tier
	// (950 km side at n=100k), clustered higher inside cities.
	side := 3000 * math.Sqrt(float64(n))
	cities := n / 100
	if cities < 64 {
		cities = 64
	}
	type xy struct{ x, y float64 }
	centers := make([]xy, cities)
	for i := range centers {
		centers[i] = xy{x: rng.Float64() * side, y: rng.Float64() * side}
	}
	// Morning commute, midday, evening commute, night — the anchor
	// minutes every subscriber's activity clusters around.
	diurnal := [...]float64{540, 720, 1080, 1320}
	fps := make([]*core.Fingerprint, n)
	samples := make([]core.Sample, samplesPer)
	for i := range fps {
		c := centers[int(rng.Float64()*float64(cities))]
		ax := c.x + rng.NormFloat64()*8_000
		ay := c.y + rng.NormFloat64()*8_000
		for s := range samples {
			t := diurnal[s%len(diurnal)] + rng.NormFloat64()*15
			if t < 0 {
				t = 0
			} else if t > cdr.MinutesPerDay-1 {
				t = cdr.MinutesPerDay - 1
			}
			samples[s] = core.Sample{
				X:      math.Floor((ax+rng.NormFloat64()*1000)/1000) * 1000,
				DX:     1000,
				Y:      math.Floor((ay+rng.NormFloat64()*1000)/1000) * 1000,
				DY:     1000,
				T:      math.Floor(t),
				DT:     1,
				Weight: 1,
			}
		}
		fps[i] = core.NewFingerprint(fmt.Sprintf("u%07d", i), samples)
	}
	return core.NewDataset(fps)
}

// ScalingRecords returns the metadata and a streaming generator of n
// clustered CDR records over the given subscriber population — the
// columnar-store benchmark's feed. The generator produces one record
// per call (io.EOF after n), so a million-record ingest never
// materializes a []Record on the producer side either. Deterministic
// given seed.
func ScalingRecords(n, users int, seed int64) (cdr.Meta, func() (cdr.Record, error)) {
	rng := rand.New(rand.NewSource(seed))
	center := geo.LatLon{Lat: 7.54, Lon: -5.55}
	const spanDays = 7
	i := 0
	next := func() (cdr.Record, error) {
		if i >= n {
			return cdr.Record{}, io.EOF
		}
		rec := cdr.Record{
			User: fmt.Sprintf("u%07d", i%users),
			Pos: geo.LatLon{
				Lat: center.Lat + (rng.Float64()-0.5)*2,
				Lon: center.Lon + (rng.Float64()-0.5)*2,
			},
			Minute: math.Floor(rng.Float64() * spanDays * cdr.MinutesPerDay),
		}
		i++
		return rec, nil
	}
	return cdr.Meta{Center: center, SpanDays: spanDays}, next
}
