// Package synth generates synthetic nationwide CDR datasets that stand
// in for the proprietary D4D Ivory Coast and Senegal datasets of Sec. 3
// (see DESIGN.md, "Substitutions").
//
// The generator reproduces the structural properties the paper's
// analysis depends on:
//
//   - a primate-city system: city populations follow a Zipf law, antennas
//     are allocated proportionally to population and placed with Gaussian
//     density around city centers;
//   - anchored individual mobility: every subscriber has home and work
//     antennas plus a small set of preferred places, visited with strong
//     diurnal and weekly periodicity, and occasionally explores new
//     nearby antennas (exploration and preferential return);
//   - spatial locality: home-work commutes are a few km, so the median
//     radius of gyration lands near the paper's ~2 km;
//   - a sparse, heterogeneous, bursty event process: per-user daily
//     rates are log-normal, event times follow a circadian profile with
//     night minima, and events arrive in short bursts — which creates
//     exactly the long-tailed inter-event diversity that makes the
//     temporal dimension hard to anonymize (Sec. 5.3).
//
// Everything is deterministic given Config.Seed.
package synth

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/cdr"
	"repro/internal/geo"
)

// Config parameterizes a synthetic dataset.
type Config struct {
	Name string // dataset label, e.g. "civ"
	Seed int64

	Users int // number of subscribers
	Days  int // recording period length

	Center          geo.LatLon // projection / country center
	CountryRadiusKm float64    // country disc radius
	NumCities       int
	NumAntennas     int

	// MedianEventsPerDay is the median of the per-user log-normal daily
	// event rate; RateSigma is its log-space standard deviation.
	MedianEventsPerDay float64
	RateSigma          float64

	// CommuteScaleKm is the mean home-work distance (exponential).
	CommuteScaleKm float64
}

// Validate checks that the configuration is generable.
func (c Config) Validate() error {
	switch {
	case c.Users <= 0:
		return fmt.Errorf("synth: Users = %d", c.Users)
	case c.Days <= 0:
		return fmt.Errorf("synth: Days = %d", c.Days)
	case !c.Center.Valid():
		return fmt.Errorf("synth: invalid center %v", c.Center)
	case c.NumCities <= 0 || c.NumAntennas < c.NumCities:
		return fmt.Errorf("synth: %d cities / %d antennas", c.NumCities, c.NumAntennas)
	case c.CountryRadiusKm <= 0:
		return fmt.Errorf("synth: CountryRadiusKm = %g", c.CountryRadiusKm)
	case c.MedianEventsPerDay <= 0:
		return fmt.Errorf("synth: MedianEventsPerDay = %g", c.MedianEventsPerDay)
	case c.RateSigma < 0:
		return fmt.Errorf("synth: RateSigma = %g", c.RateSigma)
	case c.CommuteScaleKm <= 0:
		return fmt.Errorf("synth: CommuteScaleKm = %g", c.CommuteScaleKm)
	}
	return nil
}

// scaleCities keeps the population density per city realistic at any
// dataset size: the paper's datasets give every subscriber thousands of
// same-city peers, so reduced-scale workloads must shrink the city
// system rather than spread a handful of users over a whole country.
func scaleCities(users, maxCities int) int {
	c := users / 15
	if c < 3 {
		c = 3
	}
	if c > maxCities {
		c = maxCities
	}
	return c
}

// scaleAntennas keeps the user/antenna density in a regime where
// subscribers share anchor antennas (as tens of users per antenna do in
// the real datasets) while cities stay spatially fine-grained.
func scaleAntennas(users, cities int) int {
	a := users
	if a < cities*8 {
		a = cities * 8
	}
	if a > 2400 {
		a = 2400
	}
	return a
}

// CIV returns an Ivory Coast-like profile scaled to the given user
// count: one large primate city (Abidjan-like), two weeks of data.
func CIV(users int) Config {
	cities := scaleCities(users, 22)
	return Config{
		Name: "civ", Seed: 101,
		Users: users, Days: 14,
		Center:          geo.LatLon{Lat: 7.54, Lon: -5.55},
		CountryRadiusKm: 280,
		NumCities:       cities, NumAntennas: scaleAntennas(users, cities),
		MedianEventsPerDay: 14, RateSigma: 0.7,
		CommuteScaleKm: 3,
	}
}

// SEN returns a Senegal-like profile: slightly more concentrated
// population (Dakar-like primate city), two weeks of data.
func SEN(users int) Config {
	cities := scaleCities(users, 18)
	return Config{
		Name: "sen", Seed: 202,
		Users: users, Days: 14,
		Center:          geo.LatLon{Lat: 14.49, Lon: -14.45},
		CountryRadiusKm: 260,
		NumCities:       cities, NumAntennas: scaleAntennas(users, cities),
		MedianEventsPerDay: 16, RateSigma: 0.6,
		CommuteScaleKm: 2.5,
	}
}

// City is one population center of the synthetic country.
type City struct {
	Center   geo.Point // planar position
	RadiusM  float64   // Gaussian scale of antenna placement
	PopShare float64   // fraction of national population
}

// Antenna is one cell tower.
type Antenna struct {
	ID   int
	Pos  geo.Point  // planar position
	Geo  geo.LatLon // geographic position (what CDRs log)
	City int        // index into Country.Cities, -1 for rural
}

// Country is the static radio-access substrate.
type Country struct {
	Cities   []City
	Antennas []Antenna
	Proj     *geo.Projection
}

// User is the ground truth behind one subscriber's records, exposed so
// utility studies (e.g. the commute example) can score their inferences.
type User struct {
	ID         string
	Home       int // antenna ID
	Work       int
	Preferred  []int   // leisure antennas
	RatePerDay float64 // mean daily event rate
}

// Population is the generated ground truth.
type Population struct {
	Users []User
}

// Generate builds the synthetic dataset: the country, the population,
// and the CDR table.
func Generate(cfg Config) (*cdr.Table, *Country, *Population, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	country, err := buildCountry(cfg, rng)
	if err != nil {
		return nil, nil, nil, err
	}
	pop := buildPopulation(cfg, country, rng)
	table := buildTraffic(cfg, country, pop, rng)
	return table, country, pop, nil
}

// buildCountry places cities (Zipf populations, minimum separation) and
// antennas (population-proportional with a rural remainder).
func buildCountry(cfg Config, rng *rand.Rand) (*Country, error) {
	proj, err := geo.NewProjection(cfg.Center)
	if err != nil {
		return nil, err
	}
	radius := cfg.CountryRadiusKm * 1000

	// Zipf city sizes with exponent ~0.95 (primate-city regime).
	shares := make([]float64, cfg.NumCities)
	var total float64
	for i := range shares {
		shares[i] = 1 / math.Pow(float64(i+1), 0.95)
		total += shares[i]
	}
	for i := range shares {
		shares[i] /= total
	}

	cities := make([]City, 0, cfg.NumCities)
	minSep := radius / 8
	for i := 0; i < cfg.NumCities; i++ {
		var c geo.Point
		ok := false
		for attempt := 0; attempt < 200; attempt++ {
			c = randInDisc(rng, radius*0.9)
			ok = true
			for _, prev := range cities {
				if prev.Center.Dist(c) < minSep {
					ok = false
					break
				}
			}
			if ok {
				break
			}
		}
		if !ok {
			// Dense configurations: accept the last candidate anyway
			// rather than failing generation.
			ok = true
		}
		cities = append(cities, City{
			Center:   c,
			RadiusM:  1200 + 5000*math.Sqrt(shares[i]),
			PopShare: shares[i],
		})
	}

	// Antennas: 90% urban (proportional to population), 10% rural.
	urban := cfg.NumAntennas * 9 / 10
	antennas := make([]Antenna, 0, cfg.NumAntennas)
	for i := 0; i < urban; i++ {
		ci := sampleIndex(rng, shares)
		city := cities[ci]
		pos := geo.Point{
			X: city.Center.X + rng.NormFloat64()*city.RadiusM/2,
			Y: city.Center.Y + rng.NormFloat64()*city.RadiusM/2,
		}
		antennas = append(antennas, Antenna{ID: len(antennas), Pos: pos, City: ci})
	}
	for len(antennas) < cfg.NumAntennas {
		antennas = append(antennas, Antenna{
			ID:   len(antennas),
			Pos:  randInDisc(rng, radius),
			City: -1,
		})
	}
	for i := range antennas {
		ll, err := proj.Inverse(antennas[i].Pos)
		if err != nil {
			return nil, fmt.Errorf("synth: antenna %d: %w", i, err)
		}
		antennas[i].Geo = ll
	}
	return &Country{Cities: cities, Antennas: antennas, Proj: proj}, nil
}

// buildPopulation assigns every subscriber a home antenna (population-
// proportional city, central-weighted antenna), a work antenna at
// commute distance, and a handful of preferred places.
func buildPopulation(cfg Config, country *Country, rng *rand.Rand) *Population {
	shares := make([]float64, len(country.Cities))
	for i, c := range country.Cities {
		shares[i] = c.PopShare
	}
	byCity := antennasByCity(country)

	users := make([]User, cfg.Users)
	for u := range users {
		homeCity := sampleIndex(rng, shares)
		home := pickNearAntenna(rng, country, byCity, homeCity, country.Cities[homeCity].Center, country.Cities[homeCity].RadiusM/2)

		// Work: usually the same city, at exponential commute distance
		// from home; 10% commute to another (population-weighted) city.
		workCity := homeCity
		if rng.Float64() < 0.10 && len(country.Cities) > 1 {
			for workCity == homeCity {
				workCity = sampleIndex(rng, shares)
			}
		}
		commute := rng.ExpFloat64() * cfg.CommuteScaleKm * 1000
		angle := rng.Float64() * 2 * math.Pi
		target := geo.Point{
			X: country.Antennas[home].Pos.X + commute*math.Cos(angle),
			Y: country.Antennas[home].Pos.Y + commute*math.Sin(angle),
		}
		if workCity != homeCity {
			target = country.Cities[workCity].Center
		}
		work := pickNearAntenna(rng, country, byCity, workCity, target, 1500)

		// Preferred leisure antennas near home.
		nPref := 3 + rng.Intn(4)
		pref := make([]int, 0, nPref)
		for len(pref) < nPref {
			p := pickNearAntenna(rng, country, byCity, homeCity,
				country.Antennas[home].Pos, 1500+rng.Float64()*2500)
			pref = append(pref, p)
		}

		rate := cfg.MedianEventsPerDay * math.Exp(rng.NormFloat64()*cfg.RateSigma)
		users[u] = User{
			ID:         fmt.Sprintf("%s-%06d", cfg.Name, u),
			Home:       home,
			Work:       work,
			Preferred:  pref,
			RatePerDay: rate,
		}
	}
	return &Population{Users: users}
}

func antennasByCity(country *Country) map[int][]int {
	m := make(map[int][]int)
	for _, a := range country.Antennas {
		m[a.City] = append(m[a.City], a.ID)
	}
	return m
}

// pickNearAntenna samples an antenna of the given city, preferring those
// close to target (softmax over negative squared distance at the given
// scale). Falls back to any antenna if the city has none.
func pickNearAntenna(rng *rand.Rand, country *Country, byCity map[int][]int, city int, target geo.Point, scale float64) int {
	cands := byCity[city]
	if len(cands) == 0 {
		return rng.Intn(len(country.Antennas))
	}
	// Among up to 16 random candidates, pick with probability
	// proportional to exp(-d^2 / 2 scale^2).
	best := cands[rng.Intn(len(cands))]
	bestW := -1.0
	for i := 0; i < 16 && i < len(cands); i++ {
		id := cands[rng.Intn(len(cands))]
		d := country.Antennas[id].Pos.Dist(target)
		w := math.Exp(-d*d/(2*scale*scale)) * (0.01 + rng.Float64())
		if w > bestW {
			bestW = w
			best = id
		}
	}
	return best
}

// dayProfile is the circadian density of event times (per-hour weights):
// night minimum, morning and evening peaks, reflecting observed mobile
// traffic profiles.
var dayProfile = [24]float64{
	0.2, 0.1, 0.1, 0.1, 0.15, 0.3, // 00-05
	0.7, 1.2, 1.6, 1.4, 1.2, 1.3, // 06-11
	1.5, 1.3, 1.2, 1.2, 1.3, 1.5, // 12-17
	1.7, 1.9, 1.8, 1.4, 0.9, 0.45, // 18-23
}

// weekend scales the profile down in the morning and shifts activity
// later.
var weekendProfile = [24]float64{
	0.35, 0.2, 0.15, 0.1, 0.1, 0.15,
	0.3, 0.5, 0.8, 1.0, 1.2, 1.4,
	1.5, 1.4, 1.3, 1.3, 1.4, 1.5,
	1.6, 1.8, 1.9, 1.7, 1.2, 0.7,
}

// buildTraffic runs the event process for every subscriber.
func buildTraffic(cfg Config, country *Country, pop *Population, rng *rand.Rand) *cdr.Table {
	table := &cdr.Table{Center: cfg.Center, SpanDays: cfg.Days}
	for _, u := range pop.Users {
		emitUser(cfg, country, u, rng, table)
	}
	sort.SliceStable(table.Records, func(i, j int) bool {
		a, b := table.Records[i], table.Records[j]
		if a.User != b.User {
			return a.User < b.User
		}
		return a.Minute < b.Minute
	})
	return table
}

// visitSet is the preferential-return memory of one subscriber. It
// preserves insertion order so sampling is deterministic for a seeded
// generator (map iteration order would not be).
type visitSet struct {
	ids    []int
	counts []int
	index  map[int]int
	total  int
}

func newVisitSet() *visitSet {
	return &visitSet{index: make(map[int]int)}
}

func (v *visitSet) add(id, n int) {
	if i, ok := v.index[id]; ok {
		v.counts[i] += n
	} else {
		v.index[id] = len(v.ids)
		v.ids = append(v.ids, id)
		v.counts = append(v.counts, n)
	}
	v.total += n
}

func (v *visitSet) len() int { return len(v.ids) }

// sample draws a visited antenna proportionally to its visit count.
func (v *visitSet) sample(rng *rand.Rand) int {
	pick := rng.Intn(v.total)
	for i, c := range v.counts {
		pick -= c
		if pick < 0 {
			return v.ids[i]
		}
	}
	return v.ids[len(v.ids)-1]
}

// emitUser generates one subscriber's records: an inhomogeneous Poisson
// process over the circadian profile with burst doubling, located via an
// anchor schedule with exploration and preferential return.
func emitUser(cfg Config, country *Country, u User, rng *rand.Rand, table *cdr.Table) {
	visits := newVisitSet() // preferential-return memory
	visits.add(u.Home, 3)
	visits.add(u.Work, 2)
	for _, p := range u.Preferred {
		visits.add(p, 1)
	}
	for day := 0; day < cfg.Days; day++ {
		weekend := day%7 >= 5
		profile := &dayProfile
		if weekend {
			profile = &weekendProfile
		}
		var profSum float64
		for _, w := range profile {
			profSum += w
		}

		n := poisson(rng, u.RatePerDay)
		for e := 0; e < n; e++ {
			hour := sampleIndexArr(rng, profile[:], profSum)
			minute := float64(day*cdr.MinutesPerDay) +
				float64(hour)*60 + rng.Float64()*60
			ant := locateEvent(country, u, visits, hour, weekend, rng)
			visits.add(ant, 1)
			table.Records = append(table.Records, cdr.Record{
				User:   u.ID,
				Pos:    country.Antennas[ant].Geo,
				Minute: minute,
			})
			// Bursts: a third of events trigger a near-immediate
			// follow-up from the same place (callbacks, SMS threads).
			if rng.Float64() < 0.3 {
				followUp := minute + 1 + rng.ExpFloat64()*6
				if followUp < float64(cfg.Days*cdr.MinutesPerDay) {
					table.Records = append(table.Records, cdr.Record{
						User:   u.ID,
						Pos:    country.Antennas[ant].Geo,
						Minute: followUp,
					})
				}
			}
		}
	}
}

// locateEvent picks the antenna of an event given the hour-of-day
// schedule: home at night, work during weekday working hours, preferred
// places and exploration otherwise.
func locateEvent(country *Country, u User, visits *visitSet, hour int, weekend bool, rng *rand.Rand) int {
	r := rng.Float64()
	switch {
	case hour < 7 || hour >= 22: // night
		if r < 0.93 {
			return u.Home
		}
		return exploreOrReturn(country, u, visits, rng)
	case !weekend && hour >= 9 && hour < 17: // working hours
		switch {
		case r < 0.75:
			return u.Work
		case r < 0.85:
			return u.Home
		default:
			return exploreOrReturn(country, u, visits, rng)
		}
	default: // mornings, evenings, weekends
		switch {
		case r < 0.35:
			return u.Home
		case r < 0.50 && !weekend:
			return u.Work
		case r < 0.80:
			return u.Preferred[rng.Intn(len(u.Preferred))]
		default:
			return exploreOrReturn(country, u, visits, rng)
		}
	}
}

// exploreOrReturn implements exploration and preferential return: with
// probability ρ S^-γ the user visits a new antenna near home; otherwise
// an already-visited antenna sampled proportionally to visit counts.
func exploreOrReturn(country *Country, u User, visits *visitSet, rng *rand.Rand) int {
	const (
		rho   = 0.6
		gamma = 0.6
	)
	s := float64(visits.len())
	if rng.Float64() < rho*math.Pow(s, -gamma) {
		// Explore: a random antenna within ~10 km of home.
		homePos := country.Antennas[u.Home].Pos
		bestID, bestD := u.Home, math.Inf(1)
		target := geo.Point{
			X: homePos.X + rng.NormFloat64()*5000,
			Y: homePos.Y + rng.NormFloat64()*5000,
		}
		for attempt := 0; attempt < 24; attempt++ {
			id := rng.Intn(len(country.Antennas))
			if d := country.Antennas[id].Pos.Dist(target); d < bestD {
				bestD = d
				bestID = id
			}
		}
		return bestID
	}
	// Preferential return.
	return visits.sample(rng)
}

// poisson samples a Poisson variate via Knuth's method for small means
// and a normal approximation above 30.
func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		n := int(math.Round(mean + math.Sqrt(mean)*rng.NormFloat64()))
		if n < 0 {
			return 0
		}
		return n
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for p > l {
		k++
		p *= rng.Float64()
	}
	return k - 1
}

// randInDisc returns a uniform point in a disc of the given radius.
func randInDisc(rng *rand.Rand, radius float64) geo.Point {
	r := radius * math.Sqrt(rng.Float64())
	a := rng.Float64() * 2 * math.Pi
	return geo.Point{X: r * math.Cos(a), Y: r * math.Sin(a)}
}

// sampleIndex draws an index proportionally to the given weights.
func sampleIndex(rng *rand.Rand, weights []float64) int {
	var total float64
	for _, w := range weights {
		total += w
	}
	return sampleIndexArr(rng, weights, total)
}

func sampleIndexArr(rng *rand.Rand, weights []float64, total float64) int {
	pick := rng.Float64() * total
	for i, w := range weights {
		pick -= w
		if pick < 0 {
			return i
		}
	}
	return len(weights) - 1
}
