package synth

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/cdr"
	"repro/internal/core"
	"repro/internal/geo"
)

func smallCfg(users int) Config {
	cfg := CIV(users)
	cfg.NumCities = 8
	cfg.NumAntennas = 160
	return cfg
}

func TestConfigValidate(t *testing.T) {
	if err := CIV(100).Validate(); err != nil {
		t.Errorf("CIV invalid: %v", err)
	}
	if err := SEN(100).Validate(); err != nil {
		t.Errorf("SEN invalid: %v", err)
	}
	bad := []Config{
		{},
		func() Config { c := CIV(10); c.Users = 0; return c }(),
		func() Config { c := CIV(10); c.Days = 0; return c }(),
		func() Config { c := CIV(10); c.Center = geo.LatLon{Lat: 400}; return c }(),
		func() Config { c := CIV(10); c.NumAntennas = 1; return c }(),
		func() Config { c := CIV(10); c.MedianEventsPerDay = 0; return c }(),
		func() Config { c := CIV(10); c.CommuteScaleKm = 0; return c }(),
		func() Config { c := CIV(10); c.RateSigma = -1; return c }(),
		func() Config { c := CIV(10); c.CountryRadiusKm = 0; return c }(),
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestGenerateBasics(t *testing.T) {
	cfg := smallCfg(50)
	table, country, pop, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := table.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(country.Cities) != cfg.NumCities {
		t.Errorf("cities = %d", len(country.Cities))
	}
	if len(country.Antennas) != cfg.NumAntennas {
		t.Errorf("antennas = %d", len(country.Antennas))
	}
	if len(pop.Users) != 50 {
		t.Errorf("users = %d", len(pop.Users))
	}
	if table.Users() != 50 {
		t.Errorf("table users = %d (every user must emit at least one record at default rates)", table.Users())
	}
	if table.SpanDays != cfg.Days {
		t.Errorf("span = %d", table.SpanDays)
	}
	for _, r := range table.Records {
		if r.Minute < 0 || r.Minute >= float64(cfg.Days*cdr.MinutesPerDay) {
			t.Fatalf("record outside recording period: %g", r.Minute)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := smallCfg(20)
	t1, _, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t2, _, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(t1.Records) != len(t2.Records) {
		t.Fatalf("record counts differ: %d vs %d", len(t1.Records), len(t2.Records))
	}
	for i := range t1.Records {
		if t1.Records[i] != t2.Records[i] {
			t.Fatalf("record %d differs across runs", i)
		}
	}
}

func TestGenerateSeedSensitivity(t *testing.T) {
	cfg := smallCfg(20)
	t1, _, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed++
	t2, _, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(t1.Records) == len(t2.Records) {
		same := true
		for i := range t1.Records {
			if t1.Records[i] != t2.Records[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical datasets")
		}
	}
}

func TestAntennasWithinCountry(t *testing.T) {
	cfg := smallCfg(5)
	_, country, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	limit := cfg.CountryRadiusKm * 1000 * 1.5 // urban Gaussian tails allowed
	for _, a := range country.Antennas {
		if d := a.Pos.Dist(geo.Point{}); d > limit {
			t.Errorf("antenna %d at %.0f km from center", a.ID, d/1000)
		}
		back, err := country.Proj.Forward(a.Geo)
		if err != nil {
			t.Fatal(err)
		}
		if back.Dist(a.Pos) > 1 {
			t.Errorf("antenna %d geo/planar mismatch: %.2f m", a.ID, back.Dist(a.Pos))
		}
	}
}

func TestCityShareZipf(t *testing.T) {
	cfg := smallCfg(5)
	_, country, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for i, c := range country.Cities {
		if i > 0 && c.PopShare > country.Cities[i-1].PopShare {
			t.Error("city shares not decreasing")
		}
		total += c.PopShare
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("shares sum to %g", total)
	}
	if country.Cities[0].PopShare < 2*country.Cities[len(country.Cities)-1].PopShare {
		t.Error("no primate-city structure")
	}
}

// Radius of gyration of each user's samples: median should land in the
// low single-digit km, matching the locality the paper reports (1.8-2 km
// medians) and that Sec. 7.3 uses to explain citywide results.
func TestRadiusOfGyrationLocality(t *testing.T) {
	cfg := smallCfg(150)
	table, country, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byUser := make(map[string][]geo.Point)
	for _, r := range table.Records {
		pt, err := country.Proj.Forward(r.Pos)
		if err != nil {
			t.Fatal(err)
		}
		byUser[r.User] = append(byUser[r.User], pt)
	}
	var rogs []float64
	for _, pts := range byUser {
		var cx, cy float64
		for _, p := range pts {
			cx += p.X
			cy += p.Y
		}
		cx /= float64(len(pts))
		cy /= float64(len(pts))
		var sum float64
		for _, p := range pts {
			dx, dy := p.X-cx, p.Y-cy
			sum += dx*dx + dy*dy
		}
		rogs = append(rogs, math.Sqrt(sum/float64(len(pts))))
	}
	sort.Float64s(rogs)
	median := rogs[len(rogs)/2]
	if median < 300 || median > 15000 {
		t.Errorf("median radius of gyration = %.0f m, want spatial locality (0.3-15 km)", median)
	}
	mean := 0.0
	for _, r := range rogs {
		mean += r
	}
	mean /= float64(len(rogs))
	if mean < median {
		t.Errorf("mean rog %.0f < median %.0f: no heavy tail of travellers", mean, median)
	}
}

// Event rates must be heterogeneous (log-normal): the ratio between the
// 90th and 10th percentile of per-user record counts should be large.
func TestRateHeterogeneity(t *testing.T) {
	cfg := smallCfg(200)
	table, _, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	for _, r := range table.Records {
		counts[r.User]++
	}
	var cs []float64
	for _, c := range counts {
		cs = append(cs, float64(c))
	}
	sort.Float64s(cs)
	p10 := cs[len(cs)/10]
	p90 := cs[len(cs)*9/10]
	if p90/p10 < 2 {
		t.Errorf("rate heterogeneity p90/p10 = %.2f, want >= 2", p90/p10)
	}
}

// The circadian profile must push activity out of the night hours.
func TestCircadianProfile(t *testing.T) {
	cfg := smallCfg(100)
	table, _, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var night, evening int
	for _, r := range table.Records {
		hour := int(r.Minute/60) % 24
		switch {
		case hour >= 1 && hour < 5:
			night++
		case hour >= 18 && hour < 22:
			evening++
		}
	}
	if night == 0 || evening == 0 {
		t.Skip("not enough records for profile test")
	}
	if float64(evening) < 3*float64(night) {
		t.Errorf("evening/night ratio = %.2f, want >= 3 (circadian profile)", float64(evening)/float64(night))
	}
}

// Burstiness: the inter-event time distribution must have a substantial
// sub-10-minute mass (bursts) and a long tail (overnight gaps).
func TestBurstyInterEventTimes(t *testing.T) {
	cfg := smallCfg(100)
	table, _, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byUser := make(map[string][]float64)
	for _, r := range table.Records {
		byUser[r.User] = append(byUser[r.User], r.Minute)
	}
	var gaps []float64
	for _, ts := range byUser {
		sort.Float64s(ts)
		for i := 1; i < len(ts); i++ {
			gaps = append(gaps, ts[i]-ts[i-1])
		}
	}
	sort.Float64s(gaps)
	var short, long int
	for _, g := range gaps {
		if g < 10 {
			short++
		}
		if g > 6*60 {
			long++
		}
	}
	if frac := float64(short) / float64(len(gaps)); frac < 0.1 {
		t.Errorf("burst fraction = %.3f, want >= 0.1", frac)
	}
	if frac := float64(long) / float64(len(gaps)); frac < 0.02 {
		t.Errorf("long-gap fraction = %.3f, want >= 0.02", frac)
	}
}

// Trajectory uniqueness: with full-length knowledge, (almost) every user
// must be unique in the raw dataset — the paper's core premise (Sec. 5.1:
// no user is 2-anonymous).
func TestTrajectoryUniqueness(t *testing.T) {
	cfg := smallCfg(80)
	table, _, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d, err := table.BuildDataset()
	if err != nil {
		t.Fatal(err)
	}
	unique := 0
	for _, f := range d.Fingerprints {
		if core.MinMatchCrowd(d, f.Samples) == 1 {
			unique++
		}
	}
	if frac := float64(unique) / float64(d.Len()); frac < 0.95 {
		t.Errorf("only %.0f%% of users unique, want >= 95%%", frac*100)
	}
}

// Home anchors must dominate night-time records.
func TestHomeAnchorAtNight(t *testing.T) {
	cfg := smallCfg(60)
	table, country, pop, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	home := make(map[string]geo.LatLon)
	for _, u := range pop.Users {
		home[u.ID] = country.Antennas[u.Home].Geo
	}
	var at, away int
	for _, r := range table.Records {
		hour := int(r.Minute/60) % 24
		if hour >= 7 && hour < 22 {
			continue
		}
		if r.Pos == home[r.User] {
			at++
		} else {
			away++
		}
	}
	if at+away == 0 {
		t.Skip("no night records")
	}
	if frac := float64(at) / float64(at+away); frac < 0.8 {
		t.Errorf("night-at-home fraction = %.2f, want >= 0.8", frac)
	}
}

func TestPoissonMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, mean := range []float64{0.5, 3, 12, 50} {
		var sum, sum2 float64
		n := 20000
		for i := 0; i < n; i++ {
			v := float64(poisson(rng, mean))
			sum += v
			sum2 += v * v
		}
		m := sum / float64(n)
		v := sum2/float64(n) - m*m
		if math.Abs(m-mean) > 0.1*mean+0.1 {
			t.Errorf("poisson(%g): mean = %g", mean, m)
		}
		if math.Abs(v-mean) > 0.2*mean+0.2 {
			t.Errorf("poisson(%g): var = %g", mean, v)
		}
	}
	if poisson(rng, 0) != 0 {
		t.Error("poisson(0) != 0")
	}
	if poisson(rng, -3) != 0 {
		t.Error("poisson(-3) != 0")
	}
}

func TestSampleIndexWeighted(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	weights := []float64{1, 0, 3}
	var counts [3]int
	for i := 0; i < 40000; i++ {
		counts[sampleIndex(rng, weights)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight index sampled %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.6 || ratio > 3.4 {
		t.Errorf("weight ratio = %.2f, want ~3", ratio)
	}
}

func TestRandInDisc(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var inside int
	const r = 1000.0
	for i := 0; i < 5000; i++ {
		p := randInDisc(rng, r)
		if d := p.Dist(geo.Point{}); d <= r {
			inside++
		}
	}
	if inside != 5000 {
		t.Errorf("%d / 5000 points outside disc", 5000-inside)
	}
	// Uniformity in area: about a quarter of points within r/2.
	var inner int
	for i := 0; i < 20000; i++ {
		if randInDisc(rng, r).Dist(geo.Point{}) <= r/2 {
			inner++
		}
	}
	if frac := float64(inner) / 20000; frac < 0.2 || frac > 0.3 {
		t.Errorf("inner fraction = %.3f, want ~0.25", frac)
	}
}

func TestVisitSet(t *testing.T) {
	v := newVisitSet()
	v.add(5, 3)
	v.add(9, 1)
	v.add(5, 2)
	if v.len() != 2 {
		t.Errorf("len = %d, want 2", v.len())
	}
	if v.total != 6 {
		t.Errorf("total = %d, want 6", v.total)
	}
	rng := rand.New(rand.NewSource(4))
	var five, nine int
	for i := 0; i < 6000; i++ {
		switch v.sample(rng) {
		case 5:
			five++
		case 9:
			nine++
		default:
			t.Fatal("sampled unknown id")
		}
	}
	ratio := float64(five) / float64(nine)
	if ratio < 4 || ratio > 6.5 {
		t.Errorf("sample ratio = %.2f, want ~5", ratio)
	}
}

func TestGenerateInvalidConfig(t *testing.T) {
	if _, _, _, err := Generate(Config{}); err == nil {
		t.Error("Generate accepted zero config")
	}
}
