// Package version carries the single version string shared by every
// binary of the reproduction (glovectl, gloved, gloveexp, d4dgen).
package version

// Version identifies the current build of the repository. Bump on
// releases; the -version flag of every command and the gloved /healthz
// endpoint report it.
const Version = "0.2.0"

// String formats the canonical "<tool> <version>" line printed by the
// -version flag.
func String(tool string) string {
	return tool + " " + Version
}
