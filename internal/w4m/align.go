package w4m

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
)

// alignCluster anonymizes one cluster: every member is synchronized to
// the pivot's time points ("wait for me") and pushed inside the
// uncertainty cylinder of diameter δ around the pivot.
//
// The LC variant assumes trajectories sampled uniformly and at similar
// rates (GPS-like data, the setting W4M was designed for), so the
// synchronization is a *linear order correspondence*: a member's j-th
// point is matched to the pivot's j-th time point. On CDR data, whose
// per-user sampling rates differ by orders of magnitude, this is exactly
// what breaks down: a chatty subscriber's mid-trajectory points land on
// a quiet pivot's slots hours or days away (the huge time errors of
// Table 2), surplus member points are deleted, and missing slots are
// filled with fabricated waiting points.
//
// The published fingerprint holds, per pivot time point, the cylinder
// cross-section as a spatial box.
func alignCluster(trajectories []Trajectory, cluster []int, ci int, opt Options, stats *Stats) *core.Fingerprint {
	pivot := medoid(trajectories, cluster, opt.TimeWeightMetersPerMinute)
	grid := trajectories[pivot].Points // the cluster's common time points

	mapped := make([]int, len(grid)) // originals mapped to each slot
	for _, ti := range cluster {
		tr := &trajectories[ti]
		n := len(tr.Points)
		if n > len(grid) {
			// Surplus points beyond the pivot's sampling are deleted.
			stats.DeletedSamples += n - len(grid)
			n = len(grid)
		}
		for j := 0; j < n; j++ {
			p := tr.Points[j]
			shift := math.Abs(p.T - grid[j].T)
			if shift > opt.MaxTimeShiftMinutes {
				stats.DeletedSamples++
				continue
			}
			mapped[j]++

			// Spatial translation into the cylinder.
			d := math.Hypot(p.X-grid[j].X, p.Y-grid[j].Y)
			var posErr float64
			if d > opt.DeltaMeters/2 {
				posErr = d - opt.DeltaMeters/2
			}
			stats.PositionErrorsM = append(stats.PositionErrorsM, posErr)
			stats.TimeErrorsMin = append(stats.TimeErrorsMin, shift)
		}
		// Waiting points: fabricate a synchronization point at every slot
		// beyond the member's own length.
		if n < len(grid) {
			stats.CreatedSamples += len(grid) - n
		}
	}

	members := make([]string, 0, len(cluster))
	for _, ti := range cluster {
		members = append(members, trajectories[ti].ID)
	}
	sort.Strings(members)

	samples := make([]core.Sample, 0, len(grid))
	for slot, g := range grid {
		w := mapped[slot]
		if w < 1 {
			w = 1 // slot populated only by fabricated waiting points
		}
		samples = append(samples, core.Sample{
			X: g.X - opt.DeltaMeters/2, DX: opt.DeltaMeters,
			Y: g.Y - opt.DeltaMeters/2, DY: opt.DeltaMeters,
			T: g.T, DT: 1,
			Weight: w,
		})
	}

	return &core.Fingerprint{
		ID:      fmt.Sprintf("w4m-c%04d", ci),
		Samples: samples,
		Count:   len(cluster),
		Members: members,
	}
}

// medoid returns the cluster member with minimum total LST distance to
// the others.
func medoid(trajectories []Trajectory, cluster []int, timeWeight float64) int {
	best := cluster[0]
	bestSum := math.Inf(1)
	for _, i := range cluster {
		var sum float64
		for _, j := range cluster {
			if i == j {
				continue
			}
			sum += LSTDistance(&trajectories[i], &trajectories[j], timeWeight)
		}
		if sum < bestSum {
			bestSum = sum
			best = i
		}
	}
	return best
}
