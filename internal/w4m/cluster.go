package w4m

import (
	"math"
	"sort"

	"repro/internal/parallel"
)

// LSTDistance is the linear spatiotemporal distance between two
// trajectories: for each point of one, the closest point of the other
// under the combined metric (Euclidean space + weighted absolute time
// difference), averaged, then symmetrized. It plays the role the EDR
// distance plays in the original W4M and shares the cost structure of
// GLOVE's Eq. 10, making the comparison fair.
func LSTDistance(a, b *Trajectory, timeWeight float64) float64 {
	if len(a.Points) == 0 || len(b.Points) == 0 {
		return math.Inf(1)
	}
	return (directedLST(a, b, timeWeight) + directedLST(b, a, timeWeight)) / 2
}

func directedLST(a, b *Trajectory, timeWeight float64) float64 {
	var sum float64
	for _, p := range a.Points {
		best := math.Inf(1)
		for _, q := range b.Points {
			d := math.Hypot(p.X-q.X, p.Y-q.Y) + timeWeight*math.Abs(p.T-q.T)
			if d < best {
				best = d
			}
		}
		sum += best
	}
	return sum / float64(len(a.Points))
}

// cluster partitions the trajectories into groups of at least K using
// chunked greedy k-member clustering with trashing. It returns the
// clusters (as index slices into trajectories) and the indices of
// trashed trajectories.
func cluster(trajectories []Trajectory, opt Options) (clusters [][]int, trashed []int) {
	n := len(trajectories)
	budget := int(opt.TrashPct * float64(n))

	// Deterministic chunk layout: order trajectories by the grid cell of
	// their centroid (a crude space-filling order) so chunks are
	// spatially coherent, which is the best case for W4M.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	cent := make([][2]float64, n)
	for i := range trajectories {
		var cx, cy float64
		for _, p := range trajectories[i].Points {
			cx += p.X
			cy += p.Y
		}
		m := float64(len(trajectories[i].Points))
		if m > 0 {
			cent[i] = [2]float64{cx / m, cy / m}
		}
	}
	sort.SliceStable(order, func(x, y int) bool {
		a, b := cent[order[x]], cent[order[y]]
		ka := [2]float64{math.Floor(a[0] / 25000), math.Floor(a[1] / 25000)}
		kb := [2]float64{math.Floor(b[0] / 25000), math.Floor(b[1] / 25000)}
		if ka[0] != kb[0] {
			return ka[0] < kb[0]
		}
		if ka[1] != kb[1] {
			return ka[1] < kb[1]
		}
		return trajectories[order[x]].ID < trajectories[order[y]].ID
	})

	for start := 0; start < n; start += opt.ChunkSize {
		end := start + opt.ChunkSize
		if end > n {
			end = n
		}
		chunk := order[start:end]
		cs, tr := clusterChunk(trajectories, chunk, opt, &budget)
		clusters = append(clusters, cs...)
		trashed = append(trashed, tr...)
	}
	return clusters, trashed
}

// clusterChunk greedily clusters one chunk. The pairwise distances of a
// chunk are computed in parallel once, then consumed serially so results
// are deterministic.
func clusterChunk(trajectories []Trajectory, chunk []int, opt Options, budget *int) (clusters [][]int, trashed []int) {
	m := len(chunk)
	if m == 0 {
		return nil, nil
	}
	dist := make([]float64, m*m)
	parallel.ForPairs(m, 0, func(i, j int) {
		d := LSTDistance(&trajectories[chunk[i]], &trajectories[chunk[j]], opt.TimeWeightMetersPerMinute)
		dist[i*m+j] = d
		dist[j*m+i] = d
	})

	unassigned := make([]bool, m)
	remaining := m
	for i := range unassigned {
		unassigned[i] = true
	}
	var localClusters [][]int // chunk-local indices, parallel to clusters

	for remaining >= opt.K {
		// Pivot: first unassigned trajectory (deterministic).
		pivot := -1
		for i := 0; i < m; i++ {
			if unassigned[i] {
				pivot = i
				break
			}
		}

		// Gather the k-1 nearest unassigned neighbours of the pivot.
		type cand struct {
			idx int
			d   float64
		}
		var cands []cand
		for j := 0; j < m; j++ {
			if j == pivot || !unassigned[j] {
				continue
			}
			cands = append(cands, cand{j, dist[pivot*m+j]})
		}
		sort.Slice(cands, func(x, y int) bool {
			if cands[x].d != cands[y].d {
				return cands[x].d < cands[y].d
			}
			return cands[x].idx < cands[y].idx
		})

		// If even the nearest neighbours are beyond the trash radius, the
		// pivot is unclusterable: trash it (budget allowing) or force the
		// cluster anyway.
		if cands[opt.K-2].d > opt.TrashRadiusMeters && *budget > 0 {
			unassigned[pivot] = false
			remaining--
			*budget--
			trashed = append(trashed, chunk[pivot])
			continue
		}

		group := []int{chunk[pivot]}
		local := []int{pivot}
		unassigned[pivot] = false
		remaining--
		for _, c := range cands[:opt.K-1] {
			group = append(group, chunk[c.idx])
			local = append(local, c.idx)
			unassigned[c.idx] = false
			remaining--
		}
		clusters = append(clusters, group)
		localClusters = append(localClusters, local)
	}

	// Leftovers (< K): trash within budget; otherwise append to the last
	// cluster when reasonably close, or trash regardless of budget (a
	// bounded overrun) when the leftover is beyond the trash radius —
	// forcing it into a cluster would blow up that cluster's cylinder.
	for i := 0; i < m; i++ {
		if !unassigned[i] {
			continue
		}
		joinable := -1
		if len(localClusters) > 0 {
			lastPivot := localClusters[len(localClusters)-1][0]
			if dist[i*m+lastPivot] <= opt.TrashRadiusMeters {
				joinable = len(clusters) - 1
			}
		}
		switch {
		case *budget > 0:
			*budget--
			trashed = append(trashed, chunk[i])
		case joinable >= 0:
			clusters[joinable] = append(clusters[joinable], chunk[i])
			localClusters[len(localClusters)-1] = append(localClusters[len(localClusters)-1], i)
		default:
			trashed = append(trashed, chunk[i])
		}
		unassigned[i] = false
		remaining--
	}
	return clusters, trashed
}
