// Package w4m reimplements the Wait-for-Me (W4M) trajectory
// anonymization algorithm with linear spatiotemporal distance and
// chunking (W4M-LC), the state-of-the-art baseline of the paper's
// comparative evaluation (Sec. 7.2, Table 2), after Abul, Bonchi and
// Nanni, "Anonymization of moving objects databases by clustering and
// perturbation", Information Systems 35(8), 2010.
//
// W4M models an uncertain trajectory as a cylinder of diameter δ. It
// greedily clusters trajectories into groups of at least k under a
// linear spatiotemporal (LST) distance — processing the database in
// chunks for scalability, and trashing up to a budget of
// hard-to-cluster trajectories — then aligns every cluster member to
// the cluster pivot's time points, creating synthetic samples where a
// member has no nearby observation and translating points into the
// cylinder. Unlike GLOVE, the output contains fabricated positions and
// times (violating PPDP truthfulness), and on sparse heterogeneously
// sampled CDR data the alignment requires hour-scale time shifts — the
// failure mode Table 2 quantifies.
package w4m

import (
	"fmt"

	"repro/internal/core"
)

// Point is one observation of a (point-based) trajectory.
type Point struct {
	X, Y float64 // meters
	T    float64 // minutes
}

// Trajectory is a time-ordered sequence of points for one subscriber.
type Trajectory struct {
	ID     string
	Points []Point
}

// Options configures a W4M-LC run.
type Options struct {
	// K is the cluster size floor (anonymity level).
	K int
	// DeltaMeters is the uncertainty cylinder diameter δ; the paper uses
	// the suggested 2 km.
	DeltaMeters float64
	// TrashPct is the maximum fraction of trajectories that may be
	// discarded as unclusterable; the paper uses the suggested 10%.
	TrashPct float64
	// ChunkSize bounds the number of trajectories clustered together
	// (the "LC" chunking that makes W4M scale to large databases).
	ChunkSize int
	// TimeWeightMetersPerMinute converts time differences to meters in
	// the LST distance; the default matches the paper's space/time
	// equivalence (20 km ~ 480 min).
	TimeWeightMetersPerMinute float64
	// MaxTimeShiftMinutes bounds the temporal translation of a member
	// point onto the pivot grid; points needing more are deleted. W4M's
	// linear correspondence can demand day-scale shifts on CDR data, so
	// the default is generous (a full recording period).
	MaxTimeShiftMinutes float64
	// TrashRadiusMeters is the LST radius above which a candidate
	// cluster member is trashed instead of clustered (budget allowing).
	TrashRadiusMeters float64
}

// DefaultOptions returns the paper's suggested W4M-LC settings for a
// given k.
func DefaultOptions(k int) Options {
	return Options{
		K:                         k,
		DeltaMeters:               2000,
		TrashPct:                  0.10,
		ChunkSize:                 400,
		TimeWeightMetersPerMinute: 20000.0 / 480,
		MaxTimeShiftMinutes:       14 * 24 * 60,
		TrashRadiusMeters:         60000,
	}
}

// Validate checks the options.
func (o Options) Validate() error {
	switch {
	case o.K < 2:
		return fmt.Errorf("w4m: K = %d", o.K)
	case o.DeltaMeters <= 0:
		return fmt.Errorf("w4m: DeltaMeters = %g", o.DeltaMeters)
	case o.TrashPct < 0 || o.TrashPct > 1:
		return fmt.Errorf("w4m: TrashPct = %g", o.TrashPct)
	case o.ChunkSize < o.K:
		return fmt.Errorf("w4m: ChunkSize %d < K %d", o.ChunkSize, o.K)
	case o.TimeWeightMetersPerMinute <= 0:
		return fmt.Errorf("w4m: TimeWeight = %g", o.TimeWeightMetersPerMinute)
	case o.MaxTimeShiftMinutes <= 0:
		return fmt.Errorf("w4m: MaxTimeShift = %g", o.MaxTimeShiftMinutes)
	case o.TrashRadiusMeters <= 0:
		return fmt.Errorf("w4m: TrashRadius = %g", o.TrashRadiusMeters)
	}
	return nil
}

// Stats is the accounting of a W4M run, in Table 2's terms.
type Stats struct {
	InputFingerprints int
	InputSamples      int

	Clusters              int
	DiscardedFingerprints int // trashed trajectories
	DiscardedSamples      int // samples of trashed trajectories
	CreatedSamples        int // fabricated synchronization points
	DeletedSamples        int // member points dropped by alignment

	// Per-original-sample errors of the published data (excluding
	// deleted and trashed samples).
	PositionErrorsM []float64
	TimeErrorsMin   []float64
}

// MeanPositionError returns the mean of the per-sample position errors.
func (s *Stats) MeanPositionError() float64 { return mean(s.PositionErrorsM) }

// MeanTimeError returns the mean of the per-sample time errors.
func (s *Stats) MeanTimeError() float64 { return mean(s.TimeErrorsMin) }

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var t float64
	for _, x := range xs {
		t += x
	}
	return t / float64(len(xs))
}

// FromDataset converts a fingerprint dataset to point trajectories
// (sample centers), W4M's native representation.
func FromDataset(d *core.Dataset) []Trajectory {
	out := make([]Trajectory, 0, d.Len())
	for _, f := range d.Fingerprints {
		tr := Trajectory{ID: f.ID, Points: make([]Point, 0, f.Len())}
		for _, s := range f.Samples {
			tr.Points = append(tr.Points, Point{
				X: s.X + s.DX/2,
				Y: s.Y + s.DY/2,
				T: s.T + s.DT/2,
			})
		}
		out = append(out, tr)
	}
	return out
}

// Run executes W4M-LC and returns the published dataset (one fingerprint
// per cluster, holding the cluster's cylinder volumes) plus the run
// statistics.
func Run(d *core.Dataset, opt Options) (*core.Dataset, *Stats, error) {
	if err := opt.Validate(); err != nil {
		return nil, nil, err
	}
	trajectories := FromDataset(d)
	if len(trajectories) < opt.K {
		return nil, nil, fmt.Errorf("w4m: %d trajectories < k = %d", len(trajectories), opt.K)
	}

	stats := &Stats{InputFingerprints: len(trajectories)}
	for _, tr := range trajectories {
		stats.InputSamples += len(tr.Points)
	}

	clusters, trashed := cluster(trajectories, opt)
	stats.DiscardedFingerprints = len(trashed)
	for _, ti := range trashed {
		stats.DiscardedSamples += len(trajectories[ti].Points)
	}

	published := make([]*core.Fingerprint, 0, len(clusters))
	for ci, cl := range clusters {
		fp := alignCluster(trajectories, cl, ci, opt, stats)
		published = append(published, fp)
	}
	stats.Clusters = len(clusters)
	return core.NewDataset(published), stats, nil
}
