package w4m

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
)

// clusteredDataset builds users in tight spatial clusters so W4M has
// something reasonable to work with.
func clusteredDataset(rng *rand.Rand, users, samplesEach int) *core.Dataset {
	fps := make([]*core.Fingerprint, users)
	for i := range fps {
		// Four "cities".
		cx := float64(i%4) * 50000
		cy := float64(i%4) * 30000
		samples := make([]core.Sample, samplesEach)
		for j := range samples {
			samples[j] = core.Sample{
				X: cx + rng.NormFloat64()*1500, DX: 100,
				Y: cy + rng.NormFloat64()*1500, DY: 100,
				T: rng.Float64() * 10000, DT: 1,
				Weight: 1,
			}
		}
		fps[i] = core.NewFingerprint(fmt.Sprintf("u%03d", i), samples)
	}
	return core.NewDataset(fps)
}

func TestOptionsValidate(t *testing.T) {
	if err := DefaultOptions(2).Validate(); err != nil {
		t.Error(err)
	}
	bad := []Options{
		{},
		func() Options { o := DefaultOptions(2); o.K = 1; return o }(),
		func() Options { o := DefaultOptions(2); o.DeltaMeters = 0; return o }(),
		func() Options { o := DefaultOptions(2); o.TrashPct = 1.5; return o }(),
		func() Options { o := DefaultOptions(2); o.ChunkSize = 1; return o }(),
		func() Options { o := DefaultOptions(2); o.TimeWeightMetersPerMinute = 0; return o }(),
		func() Options { o := DefaultOptions(2); o.MaxTimeShiftMinutes = 0; return o }(),
		func() Options { o := DefaultOptions(2); o.TrashRadiusMeters = 0; return o }(),
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("bad options %d accepted", i)
		}
	}
}

func TestFromDataset(t *testing.T) {
	d := core.NewDataset([]*core.Fingerprint{
		core.NewFingerprint("a", []core.Sample{
			{X: 0, DX: 100, Y: 0, DY: 100, T: 10, DT: 2, Weight: 1},
		}),
	})
	trs := FromDataset(d)
	if len(trs) != 1 || len(trs[0].Points) != 1 {
		t.Fatalf("FromDataset shape wrong: %+v", trs)
	}
	p := trs[0].Points[0]
	if p.X != 50 || p.Y != 50 || p.T != 11 {
		t.Errorf("center point = %+v, want (50, 50, 11)", p)
	}
}

func TestLSTDistance(t *testing.T) {
	a := &Trajectory{ID: "a", Points: []Point{{0, 0, 0}}}
	b := &Trajectory{ID: "b", Points: []Point{{3000, 4000, 0}}}
	if d := LSTDistance(a, b, 10); d != 5000 {
		t.Errorf("spatial-only distance = %g, want 5000", d)
	}
	c := &Trajectory{ID: "c", Points: []Point{{0, 0, 100}}}
	if d := LSTDistance(a, c, 10); d != 1000 {
		t.Errorf("temporal-only distance = %g, want 1000", d)
	}
	if d := LSTDistance(a, a, 10); d != 0 {
		t.Errorf("self distance = %g", d)
	}
	if d := LSTDistance(a, b, 10); d != LSTDistance(b, a, 10) {
		t.Error("LST distance asymmetric")
	}
	empty := &Trajectory{ID: "e"}
	if !math.IsInf(LSTDistance(a, empty, 10), 1) {
		t.Error("distance to empty trajectory not +Inf")
	}
}

func TestRunKAnonymity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := clusteredDataset(rng, 24, 8)
	for _, k := range []int{2, 5} {
		out, stats, err := Run(d, DefaultOptions(k))
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if err := core.ValidateKAnonymity(out, k); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		published := out.Users()
		if published+stats.DiscardedFingerprints != 24 {
			t.Errorf("k=%d: %d published + %d trashed != 24", k, published, stats.DiscardedFingerprints)
		}
		if stats.Clusters != out.Len() {
			t.Errorf("k=%d: %d clusters vs %d fingerprints", k, stats.Clusters, out.Len())
		}
	}
}

func TestRunCreatesSyntheticSamples(t *testing.T) {
	// Heterogeneous sampling: users with very different event counts in
	// one cluster force fabrication of waiting points.
	rng := rand.New(rand.NewSource(2))
	fps := make([]*core.Fingerprint, 6)
	for i := range fps {
		n := 3 + 10*i // 3, 13, 23, ... samples
		samples := make([]core.Sample, n)
		for j := range samples {
			samples[j] = core.Sample{
				X: rng.NormFloat64() * 500, DX: 100,
				Y: rng.NormFloat64() * 500, DY: 100,
				T: rng.Float64() * 10000, DT: 1,
				Weight: 1,
			}
		}
		fps[i] = core.NewFingerprint(fmt.Sprintf("u%d", i), samples)
	}
	d := core.NewDataset(fps)
	_, stats, err := Run(d, DefaultOptions(3))
	if err != nil {
		t.Fatal(err)
	}
	if stats.CreatedSamples == 0 {
		t.Error("heterogeneous sampling produced no fabricated samples")
	}
	if stats.MeanTimeError() <= 0 {
		t.Error("alignment produced zero time error on heterogeneous data")
	}
}

func TestRunTrashesOutliers(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := clusteredDataset(rng, 20, 6)
	// One pathological loner very far away in space and time.
	loner := core.NewFingerprint("loner", []core.Sample{
		{X: 9e6, DX: 100, Y: 9e6, DY: 100, T: 1, DT: 1, Weight: 1},
	})
	d = core.NewDataset(append(d.Fingerprints, loner))
	out, stats, err := Run(d, DefaultOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	if stats.DiscardedFingerprints == 0 {
		t.Error("no trajectory trashed despite extreme outlier")
	}
	for _, f := range out.Fingerprints {
		for _, m := range f.Members {
			if m == "loner" {
				t.Error("outlier was clustered instead of trashed")
			}
		}
	}
}

func TestRunTrashBudgetZero(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := clusteredDataset(rng, 12, 5)
	opt := DefaultOptions(2)
	opt.TrashPct = 0
	out, stats, err := Run(d, opt)
	if err != nil {
		t.Fatal(err)
	}
	if stats.DiscardedFingerprints != 0 {
		t.Errorf("trashed %d with zero budget", stats.DiscardedFingerprints)
	}
	if out.Users() != 12 {
		t.Errorf("published %d users, want 12", out.Users())
	}
}

func TestRunErrorsAccounted(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := clusteredDataset(rng, 16, 10)
	_, stats, err := Run(d, DefaultOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	kept := len(stats.PositionErrorsM)
	if kept != len(stats.TimeErrorsMin) {
		t.Fatal("error slices misaligned")
	}
	total := kept + stats.DeletedSamples + stats.DiscardedSamples
	if total != stats.InputSamples {
		t.Errorf("samples: kept %d + deleted %d + trashed %d != input %d",
			kept, stats.DeletedSamples, stats.DiscardedSamples, stats.InputSamples)
	}
	for _, e := range stats.PositionErrorsM {
		if e < 0 || math.IsNaN(e) {
			t.Fatal("negative position error")
		}
	}
	for _, e := range stats.TimeErrorsMin {
		if e < 0 || e > DefaultOptions(2).MaxTimeShiftMinutes {
			t.Fatalf("time error %g outside [0, maxShift]", e)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	d := clusteredDataset(rng, 14, 6)
	out1, st1, err := Run(d, DefaultOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	out2, st2, err := Run(d, DefaultOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	if out1.Len() != out2.Len() || st1.CreatedSamples != st2.CreatedSamples ||
		st1.DeletedSamples != st2.DeletedSamples {
		t.Fatal("W4M run not deterministic")
	}
}

func TestRunArgErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := clusteredDataset(rng, 3, 4)
	if _, _, err := Run(d, Options{}); err == nil {
		t.Error("zero options accepted")
	}
	if _, _, err := Run(d, DefaultOptions(5)); err == nil {
		t.Error("k > |D| accepted")
	}
}

func TestMedoid(t *testing.T) {
	trs := []Trajectory{
		{ID: "a", Points: []Point{{0, 0, 0}}},
		{ID: "b", Points: []Point{{100, 0, 0}}},
		{ID: "c", Points: []Point{{5000, 0, 0}}},
	}
	// b is central: sum distances a=100+5000 > b=100+4900 < c.
	if got := medoid(trs, []int{0, 1, 2}, 1); got != 1 {
		t.Errorf("medoid = %d, want 1", got)
	}
}

func TestStatsMeans(t *testing.T) {
	s := &Stats{PositionErrorsM: []float64{0, 100}, TimeErrorsMin: []float64{30}}
	if s.MeanPositionError() != 50 || s.MeanTimeError() != 30 {
		t.Errorf("means = %g / %g", s.MeanPositionError(), s.MeanTimeError())
	}
	empty := &Stats{}
	if empty.MeanPositionError() != 0 || empty.MeanTimeError() != 0 {
		t.Error("empty means != 0")
	}
}
