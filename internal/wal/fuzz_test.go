package wal

import (
	"bytes"
	"testing"
)

// FuzzDecode pins the decoder's crash-recovery contract: any byte
// sequence — truncated tails, bit flips, garbage — decodes without
// panicking; a truncated tail is tolerated and reported as torn, never
// silently absorbed; and whatever decodes cleanly re-encodes to exactly
// the consumed prefix (the decoder never invents or reorders frames).
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendFrame(nil, KindRecord, []byte("hello")))
	f.Add(AppendFrame(AppendFrame(nil, KindSnapshot, []byte("snap")), KindRecord, nil))
	valid := AppendFrame(nil, KindRecord, []byte("truncate-me-please"))
	f.Add(valid[:len(valid)-3]) // torn tail
	corrupt := AppendFrame(nil, KindRecord, []byte("flip-a-bit"))
	corrupt[10] ^= 0x40
	f.Add(corrupt) // interior CRC corruption
	f.Add([]byte{0, 0, 0, 0, 1, 2, 3, 4, 5})
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		frames, n, torn, err := Decode(data)
		if n < 0 || n > int64(len(data)) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		if torn && err != nil {
			t.Fatal("torn and corrupt are mutually exclusive verdicts")
		}
		if torn && n == int64(len(data)) {
			t.Fatal("torn reported but all bytes consumed")
		}
		if !torn && err == nil && n != int64(len(data)) {
			t.Fatalf("clean decode stopped early: %d of %d", n, len(data))
		}
		if err != nil {
			return
		}
		// Round-trip: re-encoding the decoded frames must reproduce the
		// consumed prefix byte for byte.
		var enc []byte
		for _, fr := range frames {
			enc = AppendFrame(enc, fr.Kind, fr.Payload)
		}
		if !bytes.Equal(enc, data[:n]) {
			t.Fatalf("re-encode mismatch: %d vs %d bytes", len(enc), n)
		}
	})
}
