// Package wal implements the append-only write-ahead journal behind
// gloved's durability layer (DESIGN.md Sec. 13). The log is a sequence
// of numbered segment files (wal-00000001.log, wal-00000002.log, ...)
// each holding length-prefixed CRC32C-framed records:
//
//	[len u32 LE][crc32c u32 LE][kind u8][payload]
//
// where len = 1+len(payload) and the checksum covers kind+payload.
// Appends go to the newest segment and rotate to a fresh segment once
// the current one passes Options.SegmentBytes. Commit provides
// group-commit fsync batching: concurrent committers share a single
// fsync covering every write that preceded it.
//
// Recovery (Open) tolerates a torn tail — a trailing frame whose bytes
// were only partially written before a crash — by truncating the last
// segment at the tear and reporting it. A fully-present frame whose
// checksum does not match is corruption, not a tear, and fails Open.
//
// Compact writes a snapshot frame as the first record of a fresh
// segment and deletes every older segment; replay starts at the newest
// segment that begins with a snapshot, so a crash between the snapshot
// write and the deletes is harmless (the extra segments are simply
// ignored and removed by the next compaction).
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/faultinject"
)

// Frame kinds. Snapshot frames only ever appear as the first record of
// a segment written by Compact.
const (
	KindRecord   byte = 0
	KindSnapshot byte = 1
)

const (
	headerSize = 8
	// MaxFrameBytes bounds a single frame; a length prefix beyond it is
	// structural corruption, not a large record.
	MaxFrameBytes = 1 << 30
)

// ErrCorrupt reports a structurally invalid or checksum-failing frame
// in the interior of the journal — unlike a torn tail, this is not
// recoverable by truncation.
var ErrCorrupt = errors.New("wal: corrupt frame")

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Options configures a Log.
type Options struct {
	// Fsync enables fsync on Commit (and on segment rotation). When
	// false, Commit is a no-op and durability is limited to what the OS
	// page cache provides.
	Fsync bool
	// SegmentBytes is the rotation threshold; a segment that reaches it
	// is closed and a new one started. Defaults to 4 MiB.
	SegmentBytes int64
	// OnSync, when non-nil, observes the duration of every fsync.
	OnSync func(time.Duration)
	// OnAppend, when non-nil, observes the framed size in bytes of
	// every appended record.
	OnAppend func(int)
}

// Recovery is what Open replayed from disk.
type Recovery struct {
	// Snapshot is the payload of the newest snapshot frame, or nil if
	// the journal has never been compacted.
	Snapshot []byte
	// Records holds every record payload appended after that snapshot,
	// in append order.
	Records [][]byte
	// TornTail reports that the last segment ended in a partially
	// written frame, which was truncated away.
	TornTail bool
	// TornBytes is the number of bytes dropped by the truncation.
	TornBytes int64
}

// Frame is one decoded journal record.
type Frame struct {
	Kind    byte
	Payload []byte
}

// Log is an open write-ahead journal. All methods are safe for
// concurrent use.
type Log struct {
	dir string
	opt Options

	mu         sync.Mutex
	cond       *sync.Cond
	f          *os.File
	seq        int   // sequence number of the current segment
	size       int64 // bytes in the current segment
	otherBytes int64 // bytes in older live segments
	numSegs    int   // live segments including the current one
	writeSeq   uint64
	syncSeq    uint64
	syncing    bool
	syncErr    error
	closed     bool
}

func segName(seq int) string { return fmt.Sprintf("wal-%08d.log", seq) }

// Decode scans a segment's bytes and returns the complete frames, the
// number of bytes consumed, whether a torn (partially written) trailing
// frame was dropped, and a non-nil error wrapping ErrCorrupt if an
// interior frame is structurally invalid or fails its checksum.
func Decode(data []byte) (frames []Frame, n int64, torn bool, err error) {
	for {
		rest := int64(len(data)) - n
		if rest == 0 {
			return frames, n, false, nil
		}
		if rest < headerSize {
			return frames, n, true, nil
		}
		length := int64(binary.LittleEndian.Uint32(data[n:]))
		sum := binary.LittleEndian.Uint32(data[n+4:])
		if length == 0 || length > MaxFrameBytes {
			return frames, n, false, fmt.Errorf("%w: frame length %d at offset %d", ErrCorrupt, length, n)
		}
		if rest < headerSize+length {
			return frames, n, true, nil
		}
		body := data[n+headerSize : n+headerSize+length]
		if crc32.Checksum(body, crcTable) != sum {
			return frames, n, false, fmt.Errorf("%w: checksum mismatch at offset %d", ErrCorrupt, n)
		}
		payload := make([]byte, length-1)
		copy(payload, body[1:])
		frames = append(frames, Frame{Kind: body[0], Payload: payload})
		n += headerSize + length
	}
}

// AppendFrame appends the wire encoding of one frame to buf.
func AppendFrame(buf []byte, kind byte, payload []byte) []byte {
	length := uint32(1 + len(payload))
	var hdr [headerSize + 1]byte
	binary.LittleEndian.PutUint32(hdr[0:], length)
	hdr[8] = kind
	sum := crc32.Checksum(hdr[8:9], crcTable)
	sum = crc32.Update(sum, crcTable, payload)
	binary.LittleEndian.PutUint32(hdr[4:], sum)
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Open opens (creating if necessary) the journal in dir, replays it,
// truncates any torn tail, and positions the log for appends.
func Open(dir string, opt Options) (*Log, *Recovery, error) {
	if opt.SegmentBytes <= 0 {
		opt.SegmentBytes = 4 << 20
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var seqs []int
	for _, e := range entries {
		var seq int
		if _, err := fmt.Sscanf(e.Name(), "wal-%08d.log", &seq); err == nil && segName(seq) == e.Name() {
			seqs = append(seqs, seq)
		}
	}
	sort.Ints(seqs)

	l := &Log{dir: dir, opt: opt}
	l.cond = sync.NewCond(&l.mu)
	rec := &Recovery{}

	if len(seqs) == 0 {
		if err := l.createSegment(1); err != nil {
			return nil, nil, err
		}
		return l, rec, nil
	}

	type segment struct {
		seq    int
		frames []Frame
		size   int64
	}
	var segs []segment
	for i, seq := range seqs {
		path := filepath.Join(dir, segName(seq))
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, nil, err
		}
		frames, n, torn, err := Decode(data)
		if err != nil {
			return nil, nil, fmt.Errorf("wal: segment %s: %w", segName(seq), err)
		}
		if torn {
			if i != len(seqs)-1 {
				return nil, nil, fmt.Errorf("%w: torn frame in non-final segment %s", ErrCorrupt, segName(seq))
			}
			rec.TornTail = true
			rec.TornBytes = int64(len(data)) - n
			if err := os.Truncate(path, n); err != nil {
				return nil, nil, err
			}
		}
		segs = append(segs, segment{seq: seq, frames: frames, size: n})
	}

	// Replay starts at the newest segment that begins with a snapshot
	// frame; anything older is pre-compaction history.
	base := 0
	for i, s := range segs {
		if len(s.frames) > 0 && s.frames[0].Kind == KindSnapshot {
			base = i
		}
	}
	for i := base; i < len(segs); i++ {
		for j, f := range segs[i].frames {
			if f.Kind == KindSnapshot {
				if i == base && j == 0 {
					rec.Snapshot = f.Payload
					continue
				}
				return nil, nil, fmt.Errorf("%w: snapshot frame in segment interior (%s)", ErrCorrupt, segName(segs[i].seq))
			}
			rec.Records = append(rec.Records, f.Payload)
		}
	}

	last := segs[len(segs)-1]
	f, err := os.OpenFile(filepath.Join(dir, segName(last.seq)), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, err
	}
	l.f = f
	l.seq = last.seq
	l.size = last.size
	l.numSegs = len(segs)
	for _, s := range segs[:len(segs)-1] {
		l.otherBytes += s.size
	}
	return l, rec, nil
}

// createSegment opens a fresh segment file as the current one. Caller
// must hold l.mu (or own the log exclusively, as in Open).
func (l *Log) createSegment(seq int) error {
	f, err := os.OpenFile(filepath.Join(l.dir, segName(seq)), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	if l.opt.Fsync {
		if err := syncDir(l.dir); err != nil {
			f.Close()
			return err
		}
	}
	if l.f != nil {
		l.otherBytes += l.size
		l.f.Close()
	}
	l.f = f
	l.seq = seq
	l.size = 0
	l.numSegs++
	return nil
}

// Append writes one record frame to the journal. The write lands in
// the OS page cache; call Commit to make it (and everything before it)
// durable. Rotation to a new segment happens after the append that
// crosses SegmentBytes.
func (l *Log) Append(payload []byte) error {
	frame := AppendFrame(nil, KindRecord, payload)
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("wal: closed")
	}
	if faultinject.Armed("wal.append.partial") {
		// Simulate a crash mid-write: half the frame reaches the disk,
		// the rest never does.
		l.f.Write(frame[:len(frame)/2])
		l.f.Sync()
		faultinject.Kill()
	}
	if _, err := l.f.Write(frame); err != nil {
		return err
	}
	l.size += int64(len(frame))
	l.writeSeq++
	if l.opt.OnAppend != nil {
		l.opt.OnAppend(len(frame))
	}
	if l.size >= l.opt.SegmentBytes {
		return l.rotateLocked()
	}
	return nil
}

// rotateLocked closes the current segment (fsyncing it first so a
// later Commit never needs the closed file) and starts the next one.
func (l *Log) rotateLocked() error {
	if l.opt.Fsync {
		start := time.Now()
		if err := l.f.Sync(); err != nil {
			return err
		}
		if l.opt.OnSync != nil {
			l.opt.OnSync(time.Since(start))
		}
	}
	l.syncSeq = l.writeSeq
	l.cond.Broadcast()
	return l.createSegment(l.seq + 1)
}

// Commit makes every previously appended record durable. Concurrent
// commits batch: one fsync covers all writes that preceded it, and
// callers whose writes are already covered return without a new fsync.
// A no-op when Options.Fsync is false.
func (l *Log) Commit() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.opt.Fsync {
		return nil
	}
	target := l.writeSeq
	for l.syncSeq < target && l.syncErr == nil {
		if l.syncing {
			l.cond.Wait()
			continue
		}
		l.syncing = true
		f := l.f
		upto := l.writeSeq
		l.mu.Unlock()
		start := time.Now()
		err := f.Sync()
		d := time.Since(start)
		l.mu.Lock()
		l.syncing = false
		if err != nil && l.syncErr == nil {
			l.syncErr = err
		}
		if upto > l.syncSeq {
			l.syncSeq = upto
		}
		if l.opt.OnSync != nil {
			l.opt.OnSync(d)
		}
		l.cond.Broadcast()
	}
	return l.syncErr
}

// Compact writes snapshot as the sole frame of a brand-new segment,
// fsyncs it, and deletes every older segment. Replay after Compact
// starts from the snapshot. Crash-safe: until the new segment is
// durable the old ones still exist, and replay always picks the newest
// snapshot-led segment.
func (l *Log) Compact(snapshot []byte) error {
	frame := AppendFrame(nil, KindSnapshot, snapshot)
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("wal: closed")
	}
	if err := l.createSegment(l.seq + 1); err != nil {
		return err
	}
	l.numSegs = 1
	l.otherBytes = 0
	if _, err := l.f.Write(frame); err != nil {
		return err
	}
	l.size = int64(len(frame))
	l.writeSeq++
	start := time.Now()
	if err := l.f.Sync(); err != nil {
		return err
	}
	if l.opt.OnSync != nil {
		l.opt.OnSync(time.Since(start))
	}
	l.syncSeq = l.writeSeq
	l.cond.Broadcast()
	if err := syncDir(l.dir); err != nil {
		return err
	}
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		var s int
		if _, err := fmt.Sscanf(e.Name(), "wal-%08d.log", &s); err == nil && segName(s) == e.Name() && s < l.seq {
			if err := os.Remove(filepath.Join(l.dir, e.Name())); err != nil && !os.IsNotExist(err) {
				return err
			}
		}
	}
	return syncDir(l.dir)
}

// Size reports the number of live segments and their total bytes.
func (l *Log) Size() (segments int, bytes int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.numSegs, l.otherBytes + l.size
}

// Close fsyncs (when enabled) and closes the journal.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	var err error
	if l.opt.Fsync {
		err = l.f.Sync()
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.cond.Broadcast()
	return err
}
