package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func openT(t *testing.T, dir string, opt Options) (*Log, *Recovery) {
	t.Helper()
	l, rec, err := Open(dir, opt)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l, rec
}

func segFiles(t *testing.T, dir string) []string {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil {
		t.Fatal(err)
	}
	return names
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, rec := openT(t, dir, Options{})
	if rec.Snapshot != nil || len(rec.Records) != 0 || rec.TornTail {
		t.Fatalf("fresh journal not empty: %+v", rec)
	}
	var want [][]byte
	for i := 0; i < 100; i++ {
		p := []byte(fmt.Sprintf("record-%03d-%s", i, bytes.Repeat([]byte{byte(i)}, i)))
		want = append(want, p)
		if err := l.Append(p); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := l.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	_, rec = openT(t, dir, Options{})
	if rec.TornTail {
		t.Fatal("unexpected torn tail")
	}
	if len(rec.Records) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(rec.Records), len(want))
	}
	for i := range want {
		if !bytes.Equal(rec.Records[i], want[i]) {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestTornTailTruncatedAndReported(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{})
	for i := 0; i < 5; i++ {
		if err := l.Append([]byte(fmt.Sprintf("keep-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	// Append a frame header that promises more bytes than follow — the
	// shape a crash mid-write leaves behind.
	path := segFiles(t, dir)[0]
	full := AppendFrame(nil, KindRecord, []byte("never finished"))
	torn := full[:len(full)-5]
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write(torn)
	f.Close()
	before, _ := os.Stat(path)

	l, rec := openT(t, dir, Options{})
	if !rec.TornTail {
		t.Fatal("torn tail not reported")
	}
	if rec.TornBytes != int64(len(torn)) {
		t.Fatalf("TornBytes = %d, want %d", rec.TornBytes, len(torn))
	}
	if len(rec.Records) != 5 {
		t.Fatalf("replayed %d records, want 5", len(rec.Records))
	}
	after, _ := os.Stat(path)
	if after.Size() != before.Size()-int64(len(torn)) {
		t.Fatalf("tail not truncated: %d -> %d", before.Size(), after.Size())
	}

	// The journal must accept appends after truncation and replay them.
	if err := l.Append([]byte("after-tear")); err != nil {
		t.Fatal(err)
	}
	l.Close()
	_, rec = openT(t, dir, Options{})
	if rec.TornTail || len(rec.Records) != 6 || string(rec.Records[5]) != "after-tear" {
		t.Fatalf("post-tear append lost: torn=%v n=%d", rec.TornTail, len(rec.Records))
	}
}

func TestTornHeaderOnly(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{})
	l.Append([]byte("x"))
	l.Close()
	path := segFiles(t, dir)[0]
	f, _ := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	f.Write([]byte{7, 0, 0}) // 3 bytes of an 8-byte header
	f.Close()
	_, rec := openT(t, dir, Options{})
	if !rec.TornTail || rec.TornBytes != 3 || len(rec.Records) != 1 {
		t.Fatalf("bad recovery: %+v", rec)
	}
}

func TestInteriorCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{})
	l.Append([]byte("first-record-payload"))
	l.Append([]byte("second-record-payload"))
	l.Close()
	path := segFiles(t, dir)[0]
	data, _ := os.ReadFile(path)
	data[12] ^= 0xff // inside the first frame's payload
	os.WriteFile(path, data, 0o644)
	_, _, err := Open(dir, Options{})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open = %v, want ErrCorrupt", err)
	}
}

func TestZeroLengthFrameIsCorrupt(t *testing.T) {
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, segName(1)), make([]byte, 16), 0o644)
	_, _, err := Open(dir, Options{})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open = %v, want ErrCorrupt", err)
	}
}

// Rotation must trigger exactly when a segment reaches SegmentBytes —
// the frame that lands exactly on the boundary closes the segment, one
// byte short does not.
func TestSegmentRotationExactBoundary(t *testing.T) {
	payload := bytes.Repeat([]byte("p"), 23)
	frameLen := len(AppendFrame(nil, KindRecord, payload))

	t.Run("exact", func(t *testing.T) {
		dir := t.TempDir()
		l, _ := openT(t, dir, Options{SegmentBytes: int64(2 * frameLen)})
		l.Append(payload)
		if n := len(segFiles(t, dir)); n != 1 {
			t.Fatalf("rotated early: %d segments", n)
		}
		l.Append(payload) // lands exactly at SegmentBytes
		if n := len(segFiles(t, dir)); n != 2 {
			t.Fatalf("no rotation at exact boundary: %d segments", n)
		}
		l.Append(payload)
		l.Close()
		_, rec := openT(t, dir, Options{SegmentBytes: int64(2 * frameLen)})
		if len(rec.Records) != 3 {
			t.Fatalf("replay across rotation lost records: %d", len(rec.Records))
		}
	})

	t.Run("one-byte-short", func(t *testing.T) {
		dir := t.TempDir()
		l, _ := openT(t, dir, Options{SegmentBytes: int64(2*frameLen) + 1})
		l.Append(payload)
		l.Append(payload)
		if n := len(segFiles(t, dir)); n != 1 {
			t.Fatalf("rotated one byte early: %d segments", n)
		}
		l.Close()
	})
}

func TestCompact(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{SegmentBytes: 64})
	for i := 0; i < 20; i++ {
		l.Append([]byte(fmt.Sprintf("pre-compact-%02d", i)))
	}
	if n := len(segFiles(t, dir)); n < 2 {
		t.Fatalf("want multiple segments before compact, got %d", n)
	}
	if err := l.Compact([]byte("snapshot-state")); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if n := len(segFiles(t, dir)); n != 1 {
		t.Fatalf("old segments survive compaction: %d files", n)
	}
	l.Append([]byte("post-compact"))
	l.Close()

	_, rec := openT(t, dir, Options{})
	if string(rec.Snapshot) != "snapshot-state" {
		t.Fatalf("Snapshot = %q", rec.Snapshot)
	}
	if len(rec.Records) != 1 || string(rec.Records[0]) != "post-compact" {
		t.Fatalf("post-compact records = %q", rec.Records)
	}
	segs, bytes := l.Size()
	_ = segs
	_ = bytes
}

// A snapshot-led segment is the replay base even when older segments
// still exist on disk (a crash between Compact's fsync and its
// deletes).
func TestReplayPicksNewestSnapshot(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{})
	l.Append([]byte("old"))
	l.Close()
	// Hand-write a later snapshot-led segment, leaving segment 1 behind.
	frame := AppendFrame(nil, KindSnapshot, []byte("snap"))
	frame = AppendFrame(frame, KindRecord, []byte("new"))
	os.WriteFile(filepath.Join(dir, segName(2)), frame, 0o644)

	_, rec := openT(t, dir, Options{})
	if string(rec.Snapshot) != "snap" || len(rec.Records) != 1 || string(rec.Records[0]) != "new" {
		t.Fatalf("replay = snapshot %q records %q", rec.Snapshot, rec.Records)
	}
}

// Concurrent committers share fsyncs: every Commit succeeds, the data
// replays, and at least one fsync was observed.
func TestGroupCommitFsync(t *testing.T) {
	dir := t.TempDir()
	var mu sync.Mutex
	syncs := 0
	l, _ := openT(t, dir, Options{Fsync: true, OnSync: func(time.Duration) {
		mu.Lock()
		syncs++
		mu.Unlock()
	}})
	const writers, per = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := l.Append([]byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					errs <- err
					return
				}
				if err := l.Commit(); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("writer: %v", err)
	}
	l.Close()
	mu.Lock()
	if syncs == 0 {
		t.Fatal("no fsync observed")
	}
	mu.Unlock()
	_, rec := openT(t, dir, Options{})
	if len(rec.Records) != writers*per {
		t.Fatalf("replayed %d records, want %d", len(rec.Records), writers*per)
	}
}

func BenchmarkWALAppend(b *testing.B) {
	payload := bytes.Repeat([]byte("x"), 256)
	for _, fsync := range []bool{false, true} {
		b.Run(fmt.Sprintf("fsync=%v", fsync), func(b *testing.B) {
			dir := b.TempDir()
			l, _, err := Open(dir, Options{Fsync: fsync})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			b.SetBytes(int64(len(payload)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := l.Append(payload); err != nil {
					b.Fatal(err)
				}
				if err := l.Commit(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
