// Package client is the typed Go SDK for the gloved anonymization
// service. It is built directly on the wire contract of internal/api —
// the same DTOs the server marshals, re-exported here, so client and
// server can never drift — and deliberately never imports
// internal/service (enforced by a build gate in the Makefile).
//
// Every method takes a context and maps non-2xx responses to a typed
// *APIError carrying the structured envelope; transient failures
// (connection errors, 429/502/503/504) of replayable requests are
// retried with exponential backoff. Dataset ingestion streams the
// caller's reader straight onto the wire, and WaitJob follows the
// job's Server-Sent-Events stream, falling back to status polling when
// streaming is unavailable.
//
//	c, _ := client.New("http://localhost:8080")
//	ds, _ := c.CreateDataset(ctx, csvFile, client.IngestOptions{Name: "civ", Days: 14})
//	job, _ := c.SubmitJob(ctx, client.JobSpec{DatasetID: ds.ID, K: 2})
//	done, _ := c.WaitJob(ctx, job.ID)
//	body, _ := c.JobResult(ctx, done.ID)
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/internal/api"
)

// Wire DTOs, re-exported from the contract package.
type (
	DatasetInfo   = api.DatasetInfo
	DatasetPage   = api.DatasetPage
	JobSpec       = api.JobSpec
	JobStatus     = api.JobStatus
	JobPage       = api.JobPage
	JobState      = api.JobState
	JobEvent      = api.JobEvent
	WindowStatus  = api.WindowStatus
	WindowState   = api.WindowState
	MetricsReport = api.MetricsReport
	JobTrace      = api.JobTrace
	TraceSpan     = api.TraceSpan
	Health        = api.Health
	Code          = api.Code
)

// APIError is the typed error for any non-2xx response: the HTTP
// status, the request id the server assigned, and the structured
// envelope (code, message, details) the contract guarantees.
type APIError struct {
	StatusCode int
	RequestID  string
	Code       Code
	Message    string
	Details    map[string]any
}

// Error implements the error interface.
func (e *APIError) Error() string {
	return fmt.Sprintf("%s: %s (http %d)", e.Code, e.Message, e.StatusCode)
}

// ErrorCode extracts the machine-readable code from any error returned
// by this package ("" when err is not an *APIError).
func ErrorCode(err error) Code {
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.Code
	}
	return ""
}

// Client talks to one gloved server.
type Client struct {
	baseURL   string
	httpc     *http.Client
	userAgent string

	maxRetries int
	backoff    time.Duration
	maxBackoff time.Duration
}

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (for custom
// transports, proxies, or TLS). Avoid setting its Timeout — it would
// sever long event streams; use per-call contexts instead.
func WithHTTPClient(h *http.Client) Option { return func(c *Client) { c.httpc = h } }

// WithRetries bounds how many times a transient failure is retried
// (0 disables retrying).
func WithRetries(n int) Option { return func(c *Client) { c.maxRetries = n } }

// WithBackoff tunes the retry schedule: the first delay and its cap
// (delays double between attempts).
func WithBackoff(base, max time.Duration) Option {
	return func(c *Client) { c.backoff, c.maxBackoff = base, max }
}

// WithUserAgent overrides the User-Agent header.
func WithUserAgent(ua string) Option { return func(c *Client) { c.userAgent = ua } }

// New builds a client for the server at baseURL (e.g.
// "http://localhost:8080").
func New(baseURL string, opts ...Option) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("client: bad server URL %q: %w", baseURL, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("client: server URL %q needs an http(s) scheme", baseURL)
	}
	c := &Client{
		baseURL:    strings.TrimRight(u.String(), "/"),
		httpc:      &http.Client{},
		userAgent:  "glove-client/" + apiVersionTag(),
		maxRetries: 3,
		backoff:    100 * time.Millisecond,
		maxBackoff: 2 * time.Second,
	}
	for _, o := range opts {
		o(c)
	}
	return c, nil
}

// apiVersionTag keeps the default User-Agent honest without importing
// internal/version (which would be fine) — the path version suffices.
func apiVersionTag() string { return "v1" }

// --- datasets ---

// IngestOptions is the metadata of a dataset ingestion; zero fields
// fall back to the server defaults.
type IngestOptions struct {
	Name string
	// Lat / Lon are the projection center; both zero means "use the
	// server default".
	Lat, Lon float64
	// Days is the recording span; 0 uses the server default.
	Days int
}

// CreateDataset streams a raw record CSV (user,lat,lon,minute) into a
// new dataset. The body is not replayable, so this call is never
// retried.
func (c *Client) CreateDataset(ctx context.Context, records io.Reader, opt IngestOptions) (DatasetInfo, error) {
	q := url.Values{}
	if opt.Name != "" {
		q.Set("name", opt.Name)
	}
	if opt.Lat != 0 || opt.Lon != 0 {
		q.Set("lat", strconv.FormatFloat(opt.Lat, 'g', -1, 64))
		q.Set("lon", strconv.FormatFloat(opt.Lon, 'g', -1, 64))
	}
	if opt.Days != 0 {
		q.Set("days", strconv.Itoa(opt.Days))
	}
	var info DatasetInfo
	err := c.doUpload(ctx, "/v1/datasets", q, records, &info)
	return info, err
}

// AppendRecords streams additional records onto a dataset feed and
// returns the metadata with the bumped version. Not retried (streaming
// body).
func (c *Client) AppendRecords(ctx context.Context, datasetID string, records io.Reader) (DatasetInfo, error) {
	var info DatasetInfo
	err := c.doUpload(ctx, "/v1/datasets/"+url.PathEscape(datasetID)+"/records", nil, records, &info)
	return info, err
}

// GetDataset fetches one dataset's metadata.
func (c *Client) GetDataset(ctx context.Context, datasetID string) (DatasetInfo, error) {
	var info DatasetInfo
	err := c.doJSON(ctx, http.MethodGet, "/v1/datasets/"+url.PathEscape(datasetID), nil, nil, &info)
	return info, err
}

// DeleteDataset removes a dataset and frees its records.
func (c *Client) DeleteDataset(ctx context.Context, datasetID string) error {
	return c.doJSON(ctx, http.MethodDelete, "/v1/datasets/"+url.PathEscape(datasetID), nil, nil, nil)
}

// ListOptions selects one page of a listing; see api.Paginate for the
// cursor semantics.
type ListOptions struct {
	Limit     int
	PageToken string
}

func (o ListOptions) query() url.Values {
	q := url.Values{}
	if o.Limit > 0 {
		q.Set("limit", strconv.Itoa(o.Limit))
	}
	if o.PageToken != "" {
		q.Set("page_token", o.PageToken)
	}
	return q
}

// ListDatasets fetches one page of the dataset listing.
func (c *Client) ListDatasets(ctx context.Context, opt ListOptions) (DatasetPage, error) {
	var page DatasetPage
	err := c.doJSON(ctx, http.MethodGet, "/v1/datasets", opt.query(), nil, &page)
	return page, err
}

// AllDatasets walks every page of the dataset listing.
func (c *Client) AllDatasets(ctx context.Context) ([]DatasetInfo, error) {
	var out []DatasetInfo
	opt := ListOptions{}
	for {
		page, err := c.ListDatasets(ctx, opt)
		if err != nil {
			return nil, err
		}
		out = append(out, page.Datasets...)
		if page.NextPageToken == "" {
			return out, nil
		}
		opt.PageToken = page.NextPageToken
	}
}

// --- jobs ---

// SubmitJob submits an anonymization job. A queue_full rejection is
// transient and retried automatically.
func (c *Client) SubmitJob(ctx context.Context, spec JobSpec) (JobStatus, error) {
	var st JobStatus
	err := c.doJSON(ctx, http.MethodPost, "/v1/jobs", nil, spec, &st)
	return st, err
}

// GetJob fetches a job's live status.
func (c *Client) GetJob(ctx context.Context, jobID string) (JobStatus, error) {
	var st JobStatus
	err := c.doJSON(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(jobID), nil, nil, &st)
	return st, err
}

// ListJobs fetches one page of the job listing.
func (c *Client) ListJobs(ctx context.Context, opt ListOptions) (JobPage, error) {
	var page JobPage
	err := c.doJSON(ctx, http.MethodGet, "/v1/jobs", opt.query(), nil, &page)
	return page, err
}

// CancelJob requests cancellation of a queued or running job and
// returns its status; cancelling a terminal job is a job_terminal
// error.
func (c *Client) CancelJob(ctx context.Context, jobID string) (JobStatus, error) {
	var st JobStatus
	err := c.doJSON(ctx, http.MethodDelete, "/v1/jobs/"+url.PathEscape(jobID), nil, nil, &st)
	return st, err
}

// ErrNotPurged reports that PurgeJob found the job still active: the
// server cancelled it (its cancel-before-purge semantics) but retained
// it. Wait for the job to turn terminal, then purge again.
var ErrNotPurged = errors.New("client: job was still active; cancelled but not purged")

// PurgeJob deletes a terminal job and its retained result from the
// server. An active job is cancelled instead and ErrNotPurged is
// returned, so the no-op is observable without a second status fetch.
func (c *Client) PurgeJob(ctx context.Context, jobID string) error {
	q := url.Values{}
	q.Set("purge", "1")
	// A purge answers 204 with no body; a cancel answers 200 with the
	// job status, which the decode below makes visible.
	var st JobStatus
	if err := c.doJSON(ctx, http.MethodDelete, "/v1/jobs/"+url.PathEscape(jobID), q, nil, &st); err != nil {
		return err
	}
	if st.ID != "" {
		return ErrNotPurged
	}
	return nil
}

// JobResult downloads the anonymized CSV of a finished batch (or
// single-window) job. The caller must Close the reader. The transport
// negotiates gzip transparently, so the bytes read are the release
// itself.
func (c *Client) JobResult(ctx context.Context, jobID string) (io.ReadCloser, error) {
	return c.download(ctx, "/v1/jobs/"+url.PathEscape(jobID)+"/result")
}

// WindowResult downloads one window's release of a windowed job,
// available as soon as that window commits.
func (c *Client) WindowResult(ctx context.Context, jobID string, window int) (io.ReadCloser, error) {
	return c.download(ctx, fmt.Sprintf("/v1/jobs/%s/windows/%d/result", url.PathEscape(jobID), window))
}

// --- service-level ---

// Health checks liveness and reports the server version.
func (c *Client) Health(ctx context.Context) (Health, error) {
	var h Health
	err := c.doJSON(ctx, http.MethodGet, "/healthz", nil, nil, &h)
	return h, err
}

// Metrics fetches the service-wide utility/risk summary.
func (c *Client) Metrics(ctx context.Context) (MetricsReport, error) {
	var m MetricsReport
	err := c.doJSON(ctx, http.MethodGet, "/v1/metrics", nil, nil, &m)
	return m, err
}

// JobTrace fetches the span tree a job's run recorded (plan, windows,
// shards, index-build/merge phases). A job that never started has no
// trace — a trace_not_found error.
func (c *Client) JobTrace(ctx context.Context, jobID string) (JobTrace, error) {
	var tr JobTrace
	err := c.doJSON(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(jobID)+"/trace", nil, nil, &tr)
	return tr, err
}

// --- plumbing ---

// doJSON performs a request whose body (if any) is a marshalled JSON
// value — replayable, so transient failures retry with backoff.
func (c *Client) doJSON(ctx context.Context, method, path string, query url.Values, in, out any) error {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return fmt.Errorf("client: encoding request: %w", err)
		}
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		req, err := c.newRequest(ctx, method, path, query, bytes.NewReader(body))
		if err != nil {
			return err
		}
		if in != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := c.httpc.Do(req)
		if err != nil {
			lastErr = fmt.Errorf("client: %s %s: %w", method, path, err)
			if attempt < c.maxRetries && c.sleep(ctx, attempt, "") {
				continue
			}
			return lastErr
		}
		if resp.StatusCode >= 200 && resp.StatusCode < 300 {
			defer resp.Body.Close()
			if out == nil || resp.StatusCode == http.StatusNoContent {
				io.Copy(io.Discard, resp.Body)
				return nil
			}
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				return fmt.Errorf("client: decoding %s %s response: %w", method, path, err)
			}
			return nil
		}
		apiErr := decodeError(resp)
		resp.Body.Close()
		lastErr = apiErr
		if transientStatus(method, resp.StatusCode) && attempt < c.maxRetries &&
			c.sleep(ctx, attempt, resp.Header.Get("Retry-After")) {
			continue
		}
		return lastErr
	}
}

// doUpload performs a streaming-body request. The body cannot be
// replayed, so there is exactly one attempt.
func (c *Client) doUpload(ctx context.Context, path string, query url.Values, body io.Reader, out any) error {
	req, err := c.newRequest(ctx, http.MethodPost, path, query, body)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "text/csv")
	resp, err := c.httpc.Do(req)
	if err != nil {
		return fmt.Errorf("client: POST %s: %w", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		return decodeError(resp)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decoding POST %s response: %w", path, err)
	}
	return nil
}

// download GETs a streaming response, retrying transient failures that
// happen before any body bytes are handed to the caller.
func (c *Client) download(ctx context.Context, path string) (io.ReadCloser, error) {
	body, _, err := c.downloadHeader(ctx, path)
	return body, err
}

// downloadHeader is download plus the response header, for callers that
// need response metadata — the event stream reads X-Glove-Boot-ID from
// it to detect daemon restarts across reconnects.
func (c *Client) downloadHeader(ctx context.Context, path string) (io.ReadCloser, http.Header, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		req, err := c.newRequest(ctx, http.MethodGet, path, nil, nil)
		if err != nil {
			return nil, nil, err
		}
		resp, err := c.httpc.Do(req)
		if err != nil {
			lastErr = fmt.Errorf("client: GET %s: %w", path, err)
			if attempt < c.maxRetries && c.sleep(ctx, attempt, "") {
				continue
			}
			return nil, nil, lastErr
		}
		if resp.StatusCode >= 200 && resp.StatusCode < 300 {
			return resp.Body, resp.Header, nil
		}
		apiErr := decodeError(resp)
		resp.Body.Close()
		lastErr = apiErr
		if transientStatus(http.MethodGet, resp.StatusCode) && attempt < c.maxRetries &&
			c.sleep(ctx, attempt, resp.Header.Get("Retry-After")) {
			continue
		}
		return nil, nil, lastErr
	}
}

func (c *Client) newRequest(ctx context.Context, method, path string, query url.Values, body io.Reader) (*http.Request, error) {
	u := c.baseURL + path
	if len(query) > 0 {
		u += "?" + query.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, method, u, body)
	if err != nil {
		return nil, fmt.Errorf("client: building %s %s: %w", method, path, err)
	}
	req.Header.Set("User-Agent", c.userAgent)
	return req, nil
}

// transientStatus classifies the HTTP statuses worth retrying. For
// non-idempotent methods (submit is a POST) only 429/503 qualify —
// those promise the server did not execute the request — while an
// ambiguous 502/504 from a gateway may have landed it, and replaying
// would duplicate the side effect.
func transientStatus(method string, status int) bool {
	switch status {
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		return true
	case http.StatusBadGateway, http.StatusGatewayTimeout:
		return method == http.MethodGet || method == http.MethodHead
	}
	return false
}

// sleep blocks for the attempt's backoff delay, returning false when
// the context ended first. A server Retry-After hint overrides the
// computed backoff (capped so a hostile or confused server cannot
// stall the client for hours); Retry-After: 0 keeps the backoff.
func (c *Client) sleep(ctx context.Context, attempt int, retryAfter string) bool {
	// attempt can grow without bound in polling loops; past a few
	// doublings the cap always wins, and shifting further would
	// overflow to zero and busy-spin.
	d := c.maxBackoff
	if attempt < 16 {
		if v := c.backoff << attempt; v < d {
			d = v
		}
	}
	const maxRetryAfter = 30 * time.Second
	if secs, err := strconv.Atoi(retryAfter); err == nil && secs > 0 {
		d = time.Duration(secs) * time.Second
		if d > maxRetryAfter {
			d = maxRetryAfter
		}
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// decodeError turns a non-2xx response into the typed *APIError. A
// body that is not the envelope (a proxy error page, say) still yields
// a usable APIError with an internal code and the raw snippet.
func decodeError(resp *http.Response) *APIError {
	out := &APIError{
		StatusCode: resp.StatusCode,
		RequestID:  resp.Header.Get("X-Request-ID"),
	}
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	var envelope api.Error
	if err := json.Unmarshal(raw, &envelope); err != nil || envelope.Code == "" {
		out.Code = api.CodeInternal
		out.Message = fmt.Sprintf("http %d: %s", resp.StatusCode, strings.TrimSpace(string(raw)))
		return out
	}
	out.Code = envelope.Code
	out.Message = envelope.Message
	out.Details = envelope.Details
	return out
}
