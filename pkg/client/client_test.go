package client_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"

	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/cdr"
	"repro/internal/core"
	"repro/internal/service"
	"repro/internal/synth"
	"repro/pkg/client"
)

// newService spins a real gloved HTTP surface for the SDK to drive.
// The SDK itself never touches internal/service — only this test
// harness does, to host the server.
func newService(t *testing.T) *httptest.Server {
	t.Helper()
	reg := service.NewRegistry()
	mgr := service.NewManager(reg, service.ManagerOptions{MaxConcurrentJobs: 2})
	t.Cleanup(mgr.Close)
	srv := httptest.NewServer(service.NewServer(reg, mgr))
	t.Cleanup(srv.Close)
	return srv
}

// synthCSV renders a synthetic table as the raw-record CSV the ingest
// endpoint consumes, returning the table for later comparisons.
func synthCSV(t *testing.T, users, days int) (*cdr.Table, []byte) {
	t.Helper()
	cfg := synth.CIV(users)
	cfg.Days = days
	table, _, _, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := cdr.WriteCSV(&buf, table); err != nil {
		t.Fatal(err)
	}
	return table, buf.Bytes()
}

// TestClientEndToEnd drives the full round trip through pkg/client
// only: ingest → append → submit a windowed job → stream its events →
// download every window release → verify each is k-anonymous — the
// tentpole acceptance path of the wire contract.
func TestClientEndToEnd(t *testing.T) {
	srv := newService(t)
	ctx := context.Background()
	c, err := client.New(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	const k = 2

	if h, err := c.Health(ctx); err != nil || h.Status != "ok" || h.Version == "" {
		t.Fatalf("health = %+v, %v", h, err)
	}

	// --- Ingest (streaming) and append (bumps the feed version). ---
	table, csvBytes := synthCSV(t, 40, 2)
	half := bytes.Index(csvBytes[len(csvBytes)/2:], []byte("\n")) + len(csvBytes)/2 + 1
	ds, err := c.CreateDataset(ctx, bytes.NewReader(csvBytes[:half]),
		client.IngestOptions{Name: "e2e", Lat: table.Center.Lat, Lon: table.Center.Lon, Days: table.SpanDays})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Version != 1 {
		t.Fatalf("fresh dataset version = %d", ds.Version)
	}
	header := csvBytes[:bytes.IndexByte(csvBytes, '\n')+1]
	rest := append(append([]byte(nil), header...), csvBytes[half:]...)
	ds, err = c.AppendRecords(ctx, ds.ID, bytes.NewReader(rest))
	if err != nil {
		t.Fatal(err)
	}
	if ds.Version != 2 || ds.Records != len(table.Records) {
		t.Fatalf("after append: version %d, %d records (want 2, %d)", ds.Version, ds.Records, len(table.Records))
	}

	// --- Submit a windowed job and wait on the event stream. ---
	job, err := c.SubmitJob(ctx, client.JobSpec{DatasetID: ds.ID, K: k, Shards: 1, WindowHours: 24})
	if err != nil {
		t.Fatal(err)
	}
	var seen []client.JobEvent
	final, err := c.WatchJob(ctx, job.ID, func(e client.JobEvent) { seen = append(seen, e) })
	if err != nil {
		t.Fatal(err)
	}
	if final.State != client.JobState("done") {
		t.Fatalf("job finished %s: %s", final.State, final.Error)
	}
	if final.DatasetVersion != 2 {
		t.Errorf("job snapshotted version %d, want 2", final.DatasetVersion)
	}
	if len(final.Windows) < 2 {
		t.Fatalf("expected a multi-window run, got %d windows", len(final.Windows))
	}

	// --- Replay the full event log (deterministic after completion)
	// and pin ordering/termination through the SDK parser. ---
	stream, err := c.JobEvents(ctx, job.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()
	var events []client.JobEvent
	for {
		e, err := stream.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		events = append(events, e)
	}
	if len(events) < 4 {
		t.Fatalf("replayed only %d events", len(events))
	}
	for i, e := range events {
		if e.Seq != i+1 {
			t.Fatalf("replay seq %d at position %d", e.Seq, i)
		}
	}
	if events[0].State != api.JobQueued || !events[len(events)-1].Terminal() {
		t.Errorf("replay bounds wrong: first %+v, last %+v", events[0], events[len(events)-1])
	}
	doneWindows := 0
	for _, e := range events {
		if e.Type == api.EventWindow && e.Window.State == api.WindowDone {
			doneWindows++
		}
	}
	if doneWindows != len(final.Windows) {
		t.Errorf("%d window-done events for %d windows", doneWindows, len(final.Windows))
	}
	if stream.LastSeq() != len(events) {
		t.Errorf("LastSeq = %d, want %d", stream.LastSeq(), len(events))
	}
	// Live-watched events (if the watch attached before completion)
	// must be a prefix-consistent slice of the replay.
	for i, e := range seen {
		if e.Seq != events[len(events)-len(seen)+i].Seq && e.Seq != i+1 {
			// seen starts at 1 when the watch attached before the run.
			t.Errorf("watched event %d has seq %d", i, e.Seq)
			break
		}
	}

	// --- Download every window release; each must be independently
	// k-anonymous and cover the window's subscribers. ---
	for _, w := range final.Windows {
		body, err := c.WindowResult(ctx, job.ID, w.Index)
		if err != nil {
			t.Fatalf("window %d: %v", w.Index, err)
		}
		raw, err := io.ReadAll(body)
		body.Close()
		if err != nil {
			t.Fatal(err)
		}
		rel, err := cdr.ReadAnonymizedCSV(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("window %d release unparseable: %v", w.Index, err)
		}
		if err := core.ValidateKAnonymity(rel, k); err != nil {
			t.Errorf("window %d not %d-anonymous: %v", w.Index, k, err)
		}
		if got := rel.Users(); got != w.Users {
			t.Errorf("window %d hides %d users, want %d", w.Index, got, w.Users)
		}
		if rel.Len() != w.Groups {
			t.Errorf("window %d has %d groups, status says %d", w.Index, rel.Len(), w.Groups)
		}
	}

	// A multi-window job has no aggregate result.
	if _, err := c.JobResult(ctx, job.ID); client.ErrorCode(err) != api.CodeResultWindowed {
		t.Errorf("aggregate result of windowed job: %v", err)
	}

	// --- Listings through the SDK paginate. ---
	all, err := c.AllDatasets(ctx)
	if err != nil || len(all) != 1 {
		t.Errorf("AllDatasets = %v, %v", all, err)
	}
	jp, err := c.ListJobs(ctx, client.ListOptions{Limit: 1})
	if err != nil || len(jp.Jobs) != 1 {
		t.Errorf("ListJobs = %+v, %v", jp, err)
	}

	// --- Metrics reflect the finished windowed job. ---
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.WindowedJobs != 1 || m.WindowReleases != len(final.Windows) {
		t.Errorf("metrics: %d windowed jobs, %d releases", m.WindowedJobs, m.WindowReleases)
	}

	// --- Cleanup through the SDK; the purged job 404s afterwards. ---
	if err := c.PurgeJob(ctx, job.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.GetJob(ctx, job.ID); client.ErrorCode(err) != api.CodeJobNotFound {
		t.Errorf("purged job: %v", err)
	}
	if err := c.DeleteDataset(ctx, ds.ID); err != nil {
		t.Fatal(err)
	}
}

// TestClientAPIError pins the typed error surface: code, status,
// request id, and details all arrive from the envelope.
func TestClientAPIError(t *testing.T) {
	srv := newService(t)
	c, err := client.New(srv.URL, client.WithRetries(0))
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.GetDataset(context.Background(), "ds-999999")
	var ae *client.APIError
	if !errors.As(err, &ae) {
		t.Fatalf("err = %T %v, want *APIError", err, err)
	}
	if ae.Code != api.CodeDatasetNotFound || ae.StatusCode != http.StatusNotFound {
		t.Errorf("APIError = %+v", ae)
	}
	if ae.RequestID == "" || ae.Details["request_id"] != ae.RequestID {
		t.Errorf("request id missing from APIError: %+v", ae)
	}
	if client.ErrorCode(err) != api.CodeDatasetNotFound {
		t.Errorf("ErrorCode = %q", client.ErrorCode(err))
	}
	if !strings.Contains(ae.Error(), "dataset_not_found") {
		t.Errorf("Error() = %q", ae.Error())
	}

	// A non-envelope error body (proxy page) still yields a usable
	// APIError instead of a decode failure.
	plain := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "bad gateway", http.StatusBadGateway)
	}))
	defer plain.Close()
	pc, _ := client.New(plain.URL, client.WithRetries(0))
	_, err = pc.Health(context.Background())
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusBadGateway || ae.Code != api.CodeInternal {
		t.Errorf("non-envelope error = %v", err)
	}
}

// TestClientRetry pins the transient-retry behavior: 503s with the
// envelope are retried with backoff until the server recovers, and
// WithRetries(0) disables that.
func TestClientRetry(t *testing.T) {
	var calls int
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		if calls <= 2 {
			w.Header().Set("Retry-After", "0")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(api.Errorf(api.CodeQueueFull, "try later"))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(api.Health{Status: "ok", Version: "test"})
	}))
	defer flaky.Close()

	c, _ := client.New(flaky.URL, client.WithBackoff(time.Millisecond, 5*time.Millisecond))
	h, err := c.Health(context.Background())
	if err != nil || h.Status != "ok" {
		t.Fatalf("health after retries = %+v, %v (calls %d)", h, err, calls)
	}
	if calls != 3 {
		t.Errorf("server saw %d calls, want 3", calls)
	}

	calls = 0
	c0, _ := client.New(flaky.URL, client.WithRetries(0))
	if _, err := c0.Health(context.Background()); client.ErrorCode(err) != api.CodeQueueFull {
		t.Errorf("no-retry error = %v", err)
	}
	if calls != 1 {
		t.Errorf("no-retry client made %d calls", calls)
	}

	// A cancelled context aborts the backoff wait promptly.
	calls = 0
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cc, _ := client.New(flaky.URL, client.WithBackoff(time.Hour, time.Hour))
	if _, err := cc.Health(ctx); err == nil {
		t.Error("cancelled context retried to success")
	}
}

// TestClientWaitJobPollFallback exercises WaitJob against a server
// without the events route: the client must fall back to polling and
// still return the terminal status.
func TestClientWaitJobPollFallback(t *testing.T) {
	var polls int
	mux := http.NewServeMux()
	writeJSON := func(w http.ResponseWriter, v any) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(v)
	}
	mux.HandleFunc("GET /v1/jobs/job-1/events", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusNotFound)
		json.NewEncoder(w).Encode(api.Errorf(api.CodeNotFound, "no events here"))
	})
	mux.HandleFunc("GET /v1/jobs/job-1", func(w http.ResponseWriter, r *http.Request) {
		polls++
		st := api.JobStatus{ID: "job-1", State: api.JobRunning}
		if polls >= 3 {
			st.State = api.JobDone
			st.Progress = 1
		}
		writeJSON(w, st)
	})
	legacy := httptest.NewServer(mux)
	defer legacy.Close()

	c, _ := client.New(legacy.URL, client.WithBackoff(time.Millisecond, 2*time.Millisecond))
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	st, err := c.WaitJob(ctx, "job-1")
	if err != nil || st.State != api.JobDone {
		t.Fatalf("WaitJob = %+v, %v after %d polls", st, err, polls)
	}
	if polls < 3 {
		t.Errorf("only %d polls", polls)
	}
}

// TestClientWatchJobDaemonRestart pins the restart-detection fallback:
// when the daemon restarts mid-watch (a new X-Glove-Boot-ID on
// reconnect), the recovered event log numbers from 1 again, so resuming
// with the old cursor would skip the whole recovered history. The
// client must drop the stale cursor and replay fresh.
func TestClientWatchJobDaemonRestart(t *testing.T) {
	var (
		mu          sync.Mutex
		boot        = "boot-1"
		finished    bool
		boot2Afters []string
	)
	sse := func(w http.ResponseWriter, events []api.JobEvent) {
		w.Header().Set("Content-Type", "text/event-stream")
		for _, e := range events {
			raw, err := json.Marshal(e)
			if err != nil {
				t.Fatal(err)
			}
			fmt.Fprintf(w, "data: %s\n\n", raw)
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/jobs/job-1/events", func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		b := boot
		mu.Unlock()
		w.Header().Set("X-Glove-Boot-ID", b)
		if b == "boot-1" {
			// First boot: three events, stream ends without a terminal
			// one (the daemon "crashed" mid-job) — then the boot flips.
			sse(w, []api.JobEvent{
				{Seq: 1, Type: api.EventState, JobID: "job-1", State: api.JobQueued},
				{Seq: 2, Type: api.EventState, JobID: "job-1", State: api.JobRunning},
				{Seq: 3, Type: api.EventProgress, JobID: "job-1", Progress: 0.5},
			})
			mu.Lock()
			boot = "boot-2"
			mu.Unlock()
			return
		}
		// Second boot: the recovered log restarts at seq 1. A stale
		// after=3 cursor selects nothing; only a fresh replay reaches
		// the terminal event.
		mu.Lock()
		boot2Afters = append(boot2Afters, r.URL.Query().Get("after"))
		mu.Unlock()
		after, _ := strconv.Atoi(r.URL.Query().Get("after"))
		full := []api.JobEvent{
			{Seq: 1, Type: api.EventState, JobID: "job-1", State: api.JobQueued},
			{Seq: 2, Type: api.EventState, JobID: "job-1", State: api.JobRunning},
			{Seq: 3, Type: api.EventState, JobID: "job-1", State: api.JobDone},
		}
		var out []api.JobEvent
		for _, e := range full {
			if e.Seq > after {
				out = append(out, e)
			}
		}
		sse(w, out)
		if len(out) > 0 && out[len(out)-1].Terminal() {
			mu.Lock()
			finished = true
			mu.Unlock()
		}
	})
	mux.HandleFunc("GET /v1/jobs/job-1", func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		st := api.JobStatus{ID: "job-1", State: api.JobRunning}
		if finished {
			st.State = api.JobDone
			st.Progress = 1
		}
		mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(st)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	c, _ := client.New(srv.URL, client.WithBackoff(time.Millisecond, 2*time.Millisecond))
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var seen []int
	st, err := c.WatchJob(ctx, "job-1", func(e client.JobEvent) { seen = append(seen, e.Seq) })
	if err != nil || st.State != api.JobDone {
		t.Fatalf("WatchJob = %+v, %v", st, err)
	}
	// The stale-cursor probe reaches boot-2 first (that is how the boot
	// change is discovered), but it must be abandoned unread and
	// followed by a fresh from-the-beginning replay.
	mu.Lock()
	afters := append([]string(nil), boot2Afters...)
	mu.Unlock()
	if len(afters) < 2 || afters[0] != "3" || afters[len(afters)-1] != "" {
		t.Fatalf("boot-2 saw after cursors %q, want a stale probe then a fresh replay", afters)
	}
	// The callback saw both boots' logs: seqs restarting at 1 mark the
	// post-restart replay.
	want := []int{1, 2, 3, 1, 2, 3}
	if len(seen) != len(want) {
		t.Fatalf("callback saw seqs %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("callback saw seqs %v, want %v", seen, want)
		}
	}
}

// TestClientBatchResult covers the batch (non-windowed) download path
// plus transparent gzip: the bytes the SDK hands back parse and
// validate regardless of the transport's content negotiation.
func TestClientBatchResult(t *testing.T) {
	srv := newService(t)
	ctx := context.Background()
	c, err := client.New(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	table, csvBytes := synthCSV(t, 30, 2)
	ds, err := c.CreateDataset(ctx, bytes.NewReader(csvBytes),
		client.IngestOptions{Lat: table.Center.Lat, Lon: table.Center.Lon, Days: table.SpanDays})
	if err != nil {
		t.Fatal(err)
	}
	job, err := c.SubmitJob(ctx, client.JobSpec{DatasetID: ds.ID, K: 2, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.WaitJob(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != api.JobDone {
		t.Fatalf("job %s: %s", final.State, final.Error)
	}
	body, err := c.JobResult(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer body.Close()
	rel, err := cdr.ReadAnonymizedCSV(body)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.ValidateKAnonymity(rel, 2); err != nil {
		t.Error(err)
	}
	if rel.Users() != ds.Users {
		t.Errorf("release hides %d users, want %d", rel.Users(), ds.Users)
	}

	// Windows of a batch job do not exist.
	if _, err := c.WindowResult(ctx, job.ID, 0); client.ErrorCode(err) != api.CodeWindowNotFound {
		t.Errorf("window of batch job: %v", err)
	}
}
