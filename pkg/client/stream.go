package client

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/url"
	"strconv"
	"strings"

	"repro/internal/api"
)

// EventStream is one open GET /v1/jobs/{id}/events connection. Read
// events with Next until an error: io.EOF means the server closed the
// stream cleanly (after the terminal event, or because the job was
// evicted). Always Close the stream.
type EventStream struct {
	body    io.ReadCloser
	scanner *bufio.Scanner
	lastSeq int
	bootID  string
}

// JobEvents opens the job's Server-Sent-Events stream, replaying
// history after sequence number `after` (0 = from the beginning) and
// then following live events until the job reaches a terminal state.
func (c *Client) JobEvents(ctx context.Context, jobID string, after int) (*EventStream, error) {
	path := "/v1/jobs/" + url.PathEscape(jobID) + "/events"
	if after > 0 {
		path += "?after=" + strconv.Itoa(after)
	}
	body, hdr, err := c.downloadHeader(ctx, path)
	if err != nil {
		return nil, err
	}
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 4096), 1<<20)
	return &EventStream{body: body, scanner: sc, lastSeq: after, bootID: hdr.Get("X-Glove-Boot-ID")}, nil
}

// Next blocks for the next event. io.EOF reports a cleanly closed
// stream; any other error is a broken connection — reconnect with
// JobEvents(ctx, id, s.LastSeq()) to resume without gaps.
func (s *EventStream) Next() (JobEvent, error) {
	var data string
	var hasData bool
	for s.scanner.Scan() {
		line := s.scanner.Text()
		switch {
		case line == "":
			if !hasData {
				continue // stray separator / heartbeat boundary
			}
			var e JobEvent
			if err := json.Unmarshal([]byte(data), &e); err != nil {
				return JobEvent{}, fmt.Errorf("client: bad event payload: %w", err)
			}
			s.lastSeq = e.Seq
			return e, nil
		case strings.HasPrefix(line, ":"): // heartbeat comment
		case strings.HasPrefix(line, "data: "):
			data, hasData = strings.TrimPrefix(line, "data: "), true
		default: // id:/event: fields duplicate the payload; ignore
		}
	}
	if err := s.scanner.Err(); err != nil {
		return JobEvent{}, err
	}
	return JobEvent{}, io.EOF
}

// LastSeq is the sequence number of the last event received — the
// resume cursor for a reconnect.
func (s *EventStream) LastSeq() int { return s.lastSeq }

// BootID identifies the server boot this stream is attached to (the
// X-Glove-Boot-ID response header; empty against servers that predate
// it). A different boot id on reconnect means the daemon restarted and
// recovered its state: event sequence numbers restarted with it, so a
// cursor from the previous boot must not be used to resume — reconnect
// with after=0 for a fresh replay instead.
func (s *EventStream) BootID() string { return s.bootID }

// Close releases the connection.
func (s *EventStream) Close() error { return s.body.Close() }

// WaitJob blocks until the job reaches a terminal state and returns
// its final status, following the event stream (with automatic
// reconnects) and falling back to status polling when streaming is
// unavailable.
func (c *Client) WaitJob(ctx context.Context, jobID string) (JobStatus, error) {
	return c.WatchJob(ctx, jobID, nil)
}

// WatchJob is WaitJob with a callback invoked for every observed event
// (state transitions, coalesced progress, window commits). The stream
// replays from the beginning, so the callback sees the whole lifecycle
// even when the job finished before the watch attached. The callback
// runs on the caller's goroutine; a reconnect replays nothing the
// callback has already seen — unless the daemon itself restarted in
// between (detected via X-Glove-Boot-ID), in which case the recovered
// event log is replayed from scratch and the callback may observe
// events again, marked by the sequence numbers restarting at 1.
func (c *Client) WatchJob(ctx context.Context, jobID string, onEvent func(JobEvent)) (JobStatus, error) {
	after := 0
	bootID := ""
	for {
		stream, err := c.JobEvents(ctx, jobID, after)
		if err != nil {
			if ctx.Err() != nil {
				return JobStatus{}, ctx.Err()
			}
			switch ErrorCode(err) {
			case api.CodeNotFound, api.CodeMethodNotAllowed:
				// A server without the events route: poll instead.
				return c.pollJob(ctx, jobID)
			case "":
				// Transport failure beyond the retry budget; polling may
				// still work (and will surface a dead server promptly).
				return c.pollJob(ctx, jobID)
			default:
				return JobStatus{}, err
			}
		}
		if id := stream.BootID(); id != "" {
			if bootID != "" && id != bootID && after > 0 {
				// The daemon restarted between connections: its recovered
				// event log numbers from 1 again, so the request just made
				// resumed at a cursor from a boot that no longer exists and
				// may have skipped the entire recovered history. Drop the
				// stale cursor and replay fresh.
				stream.Close()
				after = 0
				bootID = id
				continue
			}
			bootID = id
		}
		terminal := false
		for {
			ev, nerr := stream.Next()
			if nerr != nil {
				break // clean EOF or broken pipe: re-check status below
			}
			after = ev.Seq
			if onEvent != nil {
				onEvent(ev)
			}
			if ev.Terminal() {
				terminal = true
				break
			}
		}
		stream.Close()
		if terminal {
			return c.GetJob(ctx, jobID)
		}
		// The stream ended without a terminal event (broken connection,
		// or the job was evicted mid-stream): check the status, then
		// resume from the cursor.
		st, err := c.GetJob(ctx, jobID)
		if err != nil {
			return JobStatus{}, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		if !c.sleep(ctx, 0, "") {
			return JobStatus{}, ctx.Err()
		}
	}
}

// pollJob is the fallback waiter: status polls on the client's
// configured backoff schedule (WithBackoff tunes it).
func (c *Client) pollJob(ctx context.Context, jobID string) (JobStatus, error) {
	for attempt := 0; ; attempt++ {
		st, err := c.GetJob(ctx, jobID)
		if err != nil {
			return JobStatus{}, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		if !c.sleep(ctx, attempt, "") {
			return JobStatus{}, ctx.Err()
		}
	}
}
