package repro_test

import (
	"context"
	"runtime"
	"testing"
	"time"

	"repro/internal/cdr"
	"repro/internal/colstore"
	"repro/internal/core"
	"repro/internal/synth"
)

// The scaling benchmarks pin the 1M-fingerprint tier: index build and a
// bounded merge burst over clustered synthetic datasets at 100k, 300k
// and 1M fingerprints (core.IndexMergeProbe — a full run to k-anonymity
// is O(n) merges of O(n) cost and out of reach at this scale by
// design), plus a 1M-record columnar ingest under a byte budget. Every
// benchmark reports its heap footprint alongside ns/op so the
// memory-bounded claim is tracked in BENCH_glove.json, not just the
// speed.

// scalingMergeBurst is the bounded merge-loop length of the probe: long
// enough to exercise Remove/Reinsert/MinPair steady-state behaviour,
// short enough that the burst does not dwarf the index build at small n.
const scalingMergeBurst = 512

// scalingSamplesPer keeps the per-fingerprint sample count small so the
// 1M tier measures index scaling rather than kernel arithmetic volume.
const scalingSamplesPer = 4

// reportHeap records the current heap footprint — a lower bound on the
// run's peak RSS taken right after the workload, before anything is
// freed — and the GOMAXPROCS the run actually had, which the cross-PR
// comparison needs to interpret parallel speedups.
func reportHeap(b *testing.B) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	b.ReportMetric(float64(ms.HeapInuse), "peak-heap-bytes")
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
}

func benchIndexMergeProbe(b *testing.B, n, workers int) {
	d := synth.ScalingDataset(n, scalingSamplesPer, 42)
	opt := core.GloveOptions{K: 2, Index: core.IndexSparse, Workers: workers}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ps, err := core.IndexMergeProbe(context.Background(), d, opt, scalingMergeBurst)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(ps.IndexBuildNanos), "index-build-ns")
		if ps.Merges > 0 {
			b.ReportMetric(float64(ps.MergeNanos)/float64(ps.Merges), "ns/merge")
		}
	}
	b.StopTimer()
	reportHeap(b)
}

// BenchmarkScalingIndexMerge is the 100k/300k/1M scaling series. The
// serial variants exist so the parallel speedup is visible inside one
// BENCH_glove.json (not only across PRs); the 1M tier runs parallel
// only — a serial 1M build is minutes of redundant information. On a
// single-CPU machine the parallel variants are skipped (the numbers
// would not measure parallelism), leaving the serial series as the
// trajectory anchor.
func BenchmarkScalingIndexMerge(b *testing.B) {
	multiCPU := runtime.GOMAXPROCS(0) > 1
	for _, tier := range []struct {
		name string
		n    int
	}{
		{"100k", 100_000},
		{"300k", 300_000},
		{"1m", 1_000_000},
	} {
		hasSerialTwin := tier.n <= 300_000
		if hasSerialTwin {
			b.Run(tier.name+"-serial", func(b *testing.B) {
				benchIndexMergeProbe(b, tier.n, 1)
			})
		}
		b.Run(tier.name, func(b *testing.B) {
			if hasSerialTwin && !multiCPU {
				b.Skip("GOMAXPROCS=1: parallel tier would duplicate the serial series")
			}
			benchIndexMergeProbe(b, tier.n, 0)
		})
	}
}

// BenchmarkScalingColstore streams one million records into a columnar
// store under an 8 MiB resident budget — a ~27 MiB column footprint, so
// most chunks must spill — then scans every record and splits the view
// into daily windows. The run fails if the store ever reports resident
// bytes beyond budget + one chunk (the unsealed tail), pinning the
// memory bound, and reports the spill traffic alongside the wall clock.
func BenchmarkScalingColstore(b *testing.B) {
	const (
		records = 1_000_000
		users   = 50_000
		budget  = 8 << 20
	)
	dir := b.TempDir()
	for i := 0; i < b.N; i++ {
		meta, next := synth.ScalingRecords(records, users, 7)
		st := colstore.New(meta, colstore.Options{ByteBudget: budget, SpillDir: dir})
		if _, err := st.AppendStream(next, -1); err != nil {
			b.Fatal(err)
		}
		v := st.Snapshot()
		n := 0
		if err := v.EachRecord(func(r cdr.Record) error {
			n++
			return nil
		}); err != nil {
			b.Fatal(err)
		}
		wins, err := v.WindowSplit(24 * time.Hour)
		if err != nil {
			b.Fatal(err)
		}
		stats := st.Stats()
		chunk := int64(colstore.DefaultChunkRecords * 28)
		if stats.ResidentBytes > budget+chunk {
			b.Fatalf("resident %d bytes exceeds budget %d + tail chunk %d",
				stats.ResidentBytes, budget, chunk)
		}
		if n != records || len(wins) == 0 {
			b.Fatalf("scanned %d records into %d windows", n, len(wins))
		}
		b.ReportMetric(float64(stats.ResidentBytes), "resident-bytes")
		b.ReportMetric(float64(stats.SpilledChunks), "spilled-chunks")
		if err := st.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportHeap(b)
}
